package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/updown"
)

// TestStressGeneralIrregular exercises the engine on fully arbitrary
// irregular topologies (random spanning tree + random extra links), not
// just the paper's lattice model — the generality SPAM claims.
func TestStressGeneralIrregular(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		net, err := topology.RandomIrregular(topology.GNMConfig{
			Switches:       48,
			ExtraLinks:     30,
			MaxSwitchLinks: 7,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		lab, err := updown.New(net, updown.RootStrategy(seed%3))
		if err != nil {
			t.Fatal(err)
		}
		cfg := shortCfg()
		s, err := New(core.NewRouter(lab), cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed * 31)
		var worms []*Worm
		for i := 0; i < 250; i++ {
			src := topology.NodeID(net.NumSwitches + r.Intn(net.NumProcs))
			var dests []topology.NodeID
			k := 1
			if r.Bool(0.35) {
				k = 2 + r.Intn(12)
			}
			for _, pi := range r.Choose(net.NumProcs, k) {
				if d := topology.NodeID(net.NumSwitches + pi); d != src {
					dests = append(dests, d)
				}
			}
			if len(dests) == 0 {
				continue
			}
			w, err := s.Submit(int64(r.Intn(80000)), src, dests)
			if err != nil {
				t.Fatal(err)
			}
			worms = append(worms, w)
		}
		if err := s.RunUntilIdle(1e13); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, w := range worms {
			if !w.Completed() {
				t.Fatalf("seed %d: worm %d incomplete", seed, w.ID)
			}
		}
	}
}

func TestLatencyDecomposition(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := fig1Sim(t, cfg)
	w1, err := s.Submit(0, 6, []topology.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Submit(0, 6, []topology.NodeID{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(idleCap); err != nil {
		t.Fatal(err)
	}
	// First message: no queueing.
	if w1.QueueWaitNs() != 0 {
		t.Fatalf("w1 queue wait %d", w1.QueueWaitNs())
	}
	// Second message queued behind the first's startup+injection.
	if w2.QueueWaitNs() <= 0 {
		t.Fatalf("w2 queue wait %d", w2.QueueWaitNs())
	}
	startup := cfg.Params.StartupNs
	// Decomposition identity: latency = queue + startup + network.
	for _, w := range []*Worm{w1, w2} {
		if w.QueueWaitNs()+startup+w.NetworkNs(startup) != w.Latency() {
			t.Fatalf("worm %d decomposition does not add up", w.ID)
		}
		if w.NetworkNs(startup) <= 0 {
			t.Fatalf("worm %d network time %d", w.ID, w.NetworkNs(startup))
		}
	}
}
