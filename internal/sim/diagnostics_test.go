package sim

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestDumpStateShowsLiveTraffic(t *testing.T) {
	s, _ := fig1Sim(t, DefaultConfig())
	if _, err := s.Submit(0, 6, []topology.NodeID{7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	// Run into the middle of the transfer.
	if err := s.Run(10500); err != nil {
		t.Fatal(err)
	}
	dump := s.DumpState()
	if !strings.Contains(dump, "reserved=w1") {
		t.Fatalf("dump shows no reservation:\n%s", dump)
	}
	if !strings.Contains(dump, "outstanding=1") {
		t.Fatalf("dump header wrong:\n%s", dump)
	}
}

func TestDumpStateQuietWhenIdle(t *testing.T) {
	s, _ := fig1Sim(t, DefaultConfig())
	if _, err := s.Submit(0, 6, []topology.NodeID{7}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(idleCap); err != nil {
		t.Fatal(err)
	}
	dump := s.DumpState()
	// Only the header line remains: every channel is drained.
	if strings.Count(dump, "\n") != 1 {
		t.Fatalf("idle dump not empty:\n%s", dump)
	}
}

func TestCheckInvariantsCleanRuns(t *testing.T) {
	for _, buf := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.Params.MessageFlits = 16
		cfg.InputBufFlits = buf
		s, _ := fig1Sim(t, cfg)
		for i, src := range []topology.NodeID{6, 7, 8, 9, 10} {
			dests := []topology.NodeID{}
			for _, d := range []topology.NodeID{6, 7, 8, 9, 10} {
				if d != src {
					dests = append(dests, d)
				}
			}
			if _, err := s.Submit(int64(i)*200, src, dests); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunUntilIdle(idleCap); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("buf=%d: %v", buf, err)
		}
	}
}

func TestCheckInvariantsMidFlight(t *testing.T) {
	// Credit conservation must hold at every instant, not only when idle.
	s, _ := fig1Sim(t, DefaultConfig())
	if _, err := s.Submit(0, 6, []topology.NodeID{7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	for _, checkpoint := range []int64{10050, 10150, 10500, 11000} {
		if err := s.Run(checkpoint); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("at t=%d: %v", checkpoint, err)
		}
	}
}
