package traffic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/updown"
)

func testRig(t *testing.T, nSwitches int, seed uint64) (*sim.Simulator, Net) {
	t.Helper()
	net, err := topology.RandomLattice(topology.DefaultLattice(nSwitches, seed))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootMinID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Params.MessageFlits = 8 // keep tests fast
	s, err := sim.New(core.NewRouter(lab), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, NetworkAdapter{N: net}
}

func TestPickDests(t *testing.T) {
	_, net := testRig(t, 16, 1)
	r := rng.New(7)
	src := net.Processor(3)
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(net.NumProcessors()-1)
		dests := PickDests(r, net, src, k)
		if len(dests) != k {
			t.Fatalf("got %d dests want %d", len(dests), k)
		}
		seen := map[topology.NodeID]bool{}
		for _, d := range dests {
			if d == src {
				t.Fatal("source picked as destination")
			}
			if seen[d] {
				t.Fatal("duplicate destination")
			}
			seen[d] = true
		}
	}
}

func TestPickDestsFullFanout(t *testing.T) {
	_, net := testRig(t, 8, 2)
	r := rng.New(1)
	src := net.Processor(0)
	dests := PickDests(r, net, src, net.NumProcessors()-1)
	if len(dests) != net.NumProcessors()-1 {
		t.Fatal("full fanout size wrong")
	}
}

func TestPickDestsPanics(t *testing.T) {
	_, net := testRig(t, 4, 3)
	r := rng.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized pick accepted")
		}
	}()
	PickDests(r, net, net.Processor(0), net.NumProcessors())
}

func TestSingleMulticastCompletes(t *testing.T) {
	s, net := testRig(t, 16, 4)
	r := rng.New(11)
	w, err := SingleMulticast(s, r, net, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(1e12); err != nil {
		t.Fatal(err)
	}
	if !w.Completed() || len(w.Dests) != 5 {
		t.Fatalf("multicast state: completed=%v dests=%d", w.Completed(), len(w.Dests))
	}
}

func TestBroadcastCoversAll(t *testing.T) {
	s, net := testRig(t, 12, 5)
	src := net.Processor(0)
	w, err := Broadcast(s, net, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Dests) != net.NumProcessors()-1 {
		t.Fatalf("broadcast to %d dests want %d", len(w.Dests), net.NumProcessors()-1)
	}
	if err := s.RunUntilIdle(1e12); err != nil {
		t.Fatal(err)
	}
	if !w.Completed() {
		t.Fatal("broadcast incomplete")
	}
}

func TestMixedWorkload(t *testing.T) {
	s, net := testRig(t, 16, 6)
	r := rng.New(21)
	cfg := MixedConfig{
		RatePerProcPerUs:  0.01,
		MulticastFraction: 0.1,
		MulticastDests:    4,
		Messages:          200,
	}
	worms, err := Mixed(s, r, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(worms) != 200 {
		t.Fatalf("%d worms want 200", len(worms))
	}
	if err := s.RunUntilIdle(1e13); err != nil {
		t.Fatal(err)
	}
	multi, uni := 0, 0
	for _, w := range worms {
		if !w.Completed() {
			t.Fatalf("worm %d incomplete", w.ID)
		}
		if len(w.Dests) == 4 {
			multi++
		} else if len(w.Dests) == 1 {
			uni++
		} else {
			t.Fatalf("worm with %d dests", len(w.Dests))
		}
	}
	if multi+uni != 200 {
		t.Fatalf("multi=%d uni=%d", multi, uni)
	}
	// ~10% multicast with generous tolerance.
	if multi < 5 || multi > 45 {
		t.Fatalf("multicast count %d implausible for fraction 0.1", multi)
	}
	// Submission times must be non-decreasing.
	for i := 1; i < len(worms); i++ {
		if worms[i].SubmitNs < worms[i-1].SubmitNs {
			t.Fatal("submissions out of order")
		}
	}
}

func TestMixedRateControlsArrivals(t *testing.T) {
	// Higher rate => earlier last submission for the same message count.
	last := func(rate float64) int64 {
		s, net := testRig(t, 16, 7)
		r := rng.New(31)
		worms, err := Mixed(s, r, net, MixedConfig{
			RatePerProcPerUs:  rate,
			MulticastFraction: 0,
			Messages:          300,
		})
		if err != nil {
			t.Fatal(err)
		}
		return worms[len(worms)-1].SubmitNs
	}
	slow, fast := last(0.005), last(0.04)
	if fast >= slow {
		t.Fatalf("rate sweep broken: last arrival %d (fast) vs %d (slow)", fast, slow)
	}
}

func TestMixedValidation(t *testing.T) {
	s, net := testRig(t, 8, 8)
	r := rng.New(1)
	bad := []MixedConfig{
		{RatePerProcPerUs: 0, Messages: 10},
		{RatePerProcPerUs: 0.01, MulticastFraction: 2, Messages: 10},
		{RatePerProcPerUs: 0.01, MulticastFraction: 0.1, MulticastDests: 1000, Messages: 10},
		{RatePerProcPerUs: 0.01, Messages: 0},
		{RatePerProcPerUs: 1e9, Messages: 10}, // rate too high for slot
	}
	for i, cfg := range bad {
		if _, err := Mixed(s, r, net, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPermutation(t *testing.T) {
	s, net := testRig(t, 16, 9)
	r := rng.New(5)
	worms, err := Permutation(s, r, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(worms) != net.NumProcessors() {
		t.Fatalf("%d worms", len(worms))
	}
	for _, w := range worms {
		if len(w.Dests) != 1 || w.Dests[0] == w.Src {
			t.Fatalf("bad permutation worm: %v -> %v", w.Src, w.Dests)
		}
	}
	if err := s.RunUntilIdle(1e13); err != nil {
		t.Fatal(err)
	}
}

func TestHotSpot(t *testing.T) {
	s, net := testRig(t, 12, 10)
	dst := net.Processor(0)
	worms, err := HotSpot(s, net, dst, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(worms) != net.NumProcessors()-1 {
		t.Fatalf("%d worms", len(worms))
	}
	if err := s.RunUntilIdle(1e13); err != nil {
		t.Fatal(err)
	}
	// Deliveries at the shared destination must be strictly serialized:
	// consecutive completion gaps of at least a message's channel time.
	var times []int64
	for _, w := range worms {
		if !w.Completed() {
			t.Fatal("hotspot worm incomplete")
		}
		times = append(times, w.DoneNs)
	}
	for i := range times {
		for j := range times {
			if i != j && times[i] == times[j] {
				t.Fatal("two worms delivered at identical instant on one channel")
			}
		}
	}
}

// TestPickDestsIdxMatchesPickDests: the index-accepting fast path must be
// stream-compatible with the scanning variant.
func TestPickDestsIdxMatchesPickDests(t *testing.T) {
	_, net := testRig(t, 16, 1)
	for srcIdx := 0; srcIdx < net.NumProcessors(); srcIdx += 5 {
		for _, k := range []int{1, 3, 15} {
			a := rng.New(77)
			b := rng.New(77)
			src := net.Processor(srcIdx)
			want := PickDests(a, net, src, k)
			got := PickDestsIdx(b, net, srcIdx, k)
			if len(got) != len(want) {
				t.Fatalf("len %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("srcIdx %d k %d: %v vs %v", srcIdx, k, got, want)
				}
				if got[i] == src {
					t.Fatal("picked the source")
				}
			}
		}
	}
}
