package traffic

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Net is the slice of the network interface the generators need.
type Net interface {
	// NumProcessors returns the processor count.
	NumProcessors() int
	// Processor maps a dense processor index [0, NumProcessors) to its
	// node ID.
	Processor(i int) topology.NodeID
}

// NetworkAdapter adapts *topology.Network to the Net interface.
type NetworkAdapter struct{ N *topology.Network }

// NumProcessors implements Net.
func (a NetworkAdapter) NumProcessors() int { return a.N.NumProcs }

// Processor implements Net.
func (a NetworkAdapter) Processor(i int) topology.NodeID {
	return topology.NodeID(a.N.NumSwitches + i)
}

// PickDests draws k distinct destination processors uniformly at random,
// excluding the source. It panics if k exceeds the available processors.
//
// Locating the source's dense index costs an O(n) scan over the Net
// interface; generators that already know the index (every open-loop
// arrival loop iterates it) must use PickDestsIdx on the per-message path.
func PickDests(r *rng.Source, net Net, src topology.NodeID, k int) []topology.NodeID {
	srcIdx := -1
	for i, n := 0, net.NumProcessors(); i < n; i++ {
		if net.Processor(i) == src {
			srcIdx = i
			break
		}
	}
	return PickDestsIdx(r, net, srcIdx, k)
}

// PickDestsIdx is PickDests with the source given by its dense processor
// index in [0, NumProcessors): no scan, O(k) beyond the sampler. It panics
// if k exceeds the available processors. (A negative srcIdx skips the
// exclusion remap — PickDests' legacy behaviour for a source that is not a
// processor of net — but then index n-1 is never drawn; don't rely on it
// for uniform sampling.)
func PickDestsIdx(r *rng.Source, net Net, srcIdx, k int) []topology.NodeID {
	n := net.NumProcessors()
	if k < 1 || k > n-1 {
		panic(fmt.Sprintf("traffic: cannot pick %d destinations among %d processors", k, n-1))
	}
	// Draw from the n-1 non-source processors by index remapping.
	idx := r.Choose(n-1, k)
	out := make([]topology.NodeID, k)
	for i, v := range idx {
		if srcIdx >= 0 && v >= srcIdx {
			v++
		}
		out[i] = net.Processor(v)
	}
	return out
}

// SingleMulticast submits one multicast from a uniformly random source to k
// uniformly random destinations at time 0 and returns the worm.
func SingleMulticast(s *sim.Simulator, r *rng.Source, net Net, k int) (*sim.Worm, error) {
	src := net.Processor(r.Intn(net.NumProcessors()))
	dests := PickDests(r, net, src, k)
	return s.Submit(0, src, dests)
}

// Broadcast submits a multicast from src to every other processor.
func Broadcast(s *sim.Simulator, net Net, src topology.NodeID) (*sim.Worm, error) {
	var dests []topology.NodeID
	for i := 0; i < net.NumProcessors(); i++ {
		if d := net.Processor(i); d != src {
			dests = append(dests, d)
		}
	}
	return s.Submit(0, src, dests)
}

// MixedConfig parameterizes the Figure-3 workload.
type MixedConfig struct {
	// RatePerProcPerUs is the average message arrival rate per processor
	// in messages per microsecond (the paper sweeps ~0.005 to 0.04).
	RatePerProcPerUs float64
	// MulticastFraction is the probability a message is a multicast
	// (paper: 0.1).
	MulticastFraction float64
	// MulticastDests is the destination count of each multicast (paper:
	// 8, 16, 32 or 64).
	MulticastDests int
	// NegBinomialR is the r parameter of the negative binomial
	// inter-arrival distribution (the paper does not specify it; 2 is the
	// package default). Inter-arrival times are
	// slot·(1 + NegBinomial(r, p)) with the slot equal to one flit time.
	NegBinomialR int
	// SlotNs is the time granularity of the arrival process; 0 selects
	// 10 ns (one flit time).
	SlotNs int64
	// Messages is the total number of messages to submit.
	Messages int
	// WarmupMessages are excluded from measurement by the caller (the
	// generator tags worms in submit order; see Generate's return).
	WarmupMessages int
}

// Validate checks the configuration.
func (c *MixedConfig) Validate(net Net) error {
	if c.RatePerProcPerUs <= 0 {
		return fmt.Errorf("traffic: rate %v must be positive", c.RatePerProcPerUs)
	}
	if c.MulticastFraction < 0 || c.MulticastFraction > 1 {
		return fmt.Errorf("traffic: multicast fraction %v out of [0,1]", c.MulticastFraction)
	}
	if c.MulticastFraction > 0 && (c.MulticastDests < 1 || c.MulticastDests > net.NumProcessors()-1) {
		return fmt.Errorf("traffic: %d multicast destinations infeasible with %d processors",
			c.MulticastDests, net.NumProcessors())
	}
	if c.Messages <= 0 {
		return fmt.Errorf("traffic: message count %d must be positive", c.Messages)
	}
	if c.NegBinomialR < 0 {
		return fmt.Errorf("traffic: negative binomial r %d", c.NegBinomialR)
	}
	return nil
}

// Mixed drives the Figure-3 workload: every processor submits messages with
// negative-binomial inter-arrival times at the configured average rate; each
// message is a unicast to a uniform destination with probability
// 1−MulticastFraction, otherwise a multicast to MulticastDests uniform
// destinations. Submission happens through sim.At callbacks, so the arrival
// process interleaves correctly with network simulation. It returns the
// worms in submission order.
func Mixed(s *sim.Simulator, r *rng.Source, net Net, cfg MixedConfig) ([]*sim.Worm, error) {
	if err := cfg.Validate(net); err != nil {
		return nil, err
	}
	slot := cfg.SlotNs
	if slot <= 0 {
		slot = 10
	}
	nbR := cfg.NegBinomialR
	if nbR == 0 {
		nbR = 2
	}
	// Mean inter-arrival per processor in slots: 1000 ns/us / rate / slot.
	meanSlots := 1000.0 / cfg.RatePerProcPerUs / float64(slot)
	if meanSlots <= 1 {
		return nil, fmt.Errorf("traffic: rate %v too high for slot %d ns", cfg.RatePerProcPerUs, slot)
	}
	p := rng.NegBinomialP(nbR, meanSlots-1)

	worms := make([]*sim.Worm, 0, cfg.Messages)
	n := net.NumProcessors()
	// Draw arrival times per processor, merge-submit in time order. All
	// submissions are computed up front (the arrival process does not
	// depend on network state), which keeps the generator simple and the
	// worm order deterministic.
	type arrival struct {
		t      int64
		srcIdx int
	}
	var arrivals []arrival
	perProc := (cfg.Messages + n - 1) / n
	for i := 0; i < n; i++ {
		t := int64(0)
		for m := 0; m < perProc; m++ {
			t += slot * (1 + r.NegBinomial(nbR, p))
			arrivals = append(arrivals, arrival{t: t, srcIdx: i})
		}
	}
	// The arrival loop already knows each source's dense index, so the
	// per-message destination draw below uses PickDestsIdx directly
	// instead of rediscovering the index with a linear scan.
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].t != arrivals[j].t {
			return arrivals[i].t < arrivals[j].t
		}
		return arrivals[i].srcIdx < arrivals[j].srcIdx
	})
	if len(arrivals) > cfg.Messages {
		arrivals = arrivals[:cfg.Messages]
	}
	for _, a := range arrivals {
		k := 1
		if r.Bool(cfg.MulticastFraction) {
			k = cfg.MulticastDests
		}
		dests := PickDestsIdx(r, net, a.srcIdx, k)
		w, err := s.Submit(a.t, net.Processor(a.srcIdx), dests)
		if err != nil {
			return nil, err
		}
		worms = append(worms, w)
	}
	return worms, nil
}

// Permutation submits one unicast per processor, destination given by a
// random derangement-ish permutation (self-mappings are re-rolled to the
// next processor), all at time 0. A classic saturation pattern.
func Permutation(s *sim.Simulator, r *rng.Source, net Net) ([]*sim.Worm, error) {
	n := net.NumProcessors()
	if n < 2 {
		return nil, fmt.Errorf("traffic: permutation needs >= 2 processors")
	}
	perm := r.Perm(n)
	var worms []*sim.Worm
	for i := 0; i < n; i++ {
		j := perm[i]
		if j == i {
			j = (i + 1) % n
		}
		w, err := s.Submit(0, net.Processor(i), []topology.NodeID{net.Processor(j)})
		if err != nil {
			return nil, err
		}
		worms = append(worms, w)
	}
	return worms, nil
}

// HotSpot submits unicasts from every processor to one shared destination,
// staggered by the given gap. Exercises OCRQ queueing depth.
func HotSpot(s *sim.Simulator, net Net, dst topology.NodeID, gapNs int64) ([]*sim.Worm, error) {
	var worms []*sim.Worm
	i := 0
	for p := 0; p < net.NumProcessors(); p++ {
		src := net.Processor(p)
		if src == dst {
			continue
		}
		w, err := s.Submit(int64(i)*gapNs, src, []topology.NodeID{dst})
		if err != nil {
			return nil, err
		}
		worms = append(worms, w)
		i++
	}
	return worms, nil
}
