// Package traffic generates the workloads of the paper's Section 4:
//
//   - single multicasts with a varying number of uniformly chosen
//     destinations (Figure 2);
//   - mixed open-loop traffic, 90% unicast / 10% multicast, with
//     negative-binomially distributed inter-arrival times and varying
//     average arrival rates (Figure 3);
//   - broadcasts (the in-text comparison with software multicast);
//
// plus permutation and hot-spot patterns used by the extended tests.
package traffic
