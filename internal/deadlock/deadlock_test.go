package deadlock

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/updown"
)

func TestFigure1Static(t *testing.T) {
	net, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.NewWithRoot(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyStatic(lab); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLatticesStatic(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		n := 8 + int(seed)*9
		net, err := topology.RandomLattice(topology.DefaultLattice(n, seed+100))
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []updown.RootStrategy{updown.RootMinID, updown.RootMaxDegree, updown.RootCenter} {
			lab, err := updown.New(net, strat)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyStatic(lab); err != nil {
				t.Fatalf("n=%d seed=%d strat=%v: %v", n, seed, strat, err)
			}
		}
	}
}

func TestRegularTopologiesStatic(t *testing.T) {
	mesh, err := topology.Mesh(5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topology.Torus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := topology.Hypercube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []*topology.Network{mesh, torus, cube} {
		lab, err := updown.New(net, updown.RootCenter)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyStatic(lab); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChannelOrderCertificate(t *testing.T) {
	net, err := topology.RandomLattice(topology.DefaultLattice(48, 7))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootMinID)
	if err != nil {
		t.Fatal(err)
	}
	adj := BuildCDG(core.NewRouter(lab))
	order, err := ChannelOrder(adj)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(net.Channels) {
		t.Fatalf("order covers %d of %d channels", len(order), len(net.Channels))
	}
	// Certificate: every dependency strictly increases the rank.
	for a, outs := range adj {
		for _, b := range outs {
			if order[topology.ChannelID(a)] >= order[b] {
				t.Fatalf("dependency %d->%d does not increase rank", a, b)
			}
		}
	}
}

func TestFindCycleDetectsPlantedCycle(t *testing.T) {
	// Hand-built dependency graph with a 3-cycle 1 -> 2 -> 3 -> 1.
	adj := [][]topology.ChannelID{
		0: {1},
		1: {2},
		2: {3},
		3: {1},
		4: {},
	}
	cyc := FindCycle(adj)
	if cyc == nil {
		t.Fatal("planted cycle not found")
	}
	if len(cyc) != 3 {
		t.Fatalf("cycle %v want length 3", cyc)
	}
	inCycle := map[topology.ChannelID]bool{1: true, 2: true, 3: true}
	for _, c := range cyc {
		if !inCycle[c] {
			t.Fatalf("cycle %v contains stray channel %d", cyc, c)
		}
	}
	if _, err := ChannelOrder(adj); err == nil {
		t.Fatal("topological sort of cyclic graph succeeded")
	}
}

func TestFindCycleAcyclic(t *testing.T) {
	adj := [][]topology.ChannelID{
		0: {1, 2},
		1: {3},
		2: {3},
		3: {},
	}
	if cyc := FindCycle(adj); cyc != nil {
		t.Fatalf("phantom cycle %v", cyc)
	}
	order, err := ChannelOrder(adj)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
}

// The CDG must reflect the ordering rules: no down-channel ever depends on
// an up channel.
func TestCDGRespectsPhaseOrdering(t *testing.T) {
	net, err := topology.RandomLattice(topology.DefaultLattice(32, 9))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootMinID)
	if err != nil {
		t.Fatal(err)
	}
	adj := BuildCDG(core.NewRouter(lab))
	for a, outs := range adj {
		ca := lab.ClassOf[a]
		for _, b := range outs {
			cb := lab.ClassOf[b]
			switch ca {
			case updown.DownCross:
				if cb == updown.Up {
					t.Fatalf("cross channel %d depends on up channel %d", a, b)
				}
			case updown.DownTree:
				if cb != updown.DownTree {
					t.Fatalf("tree channel %d depends on %v channel %d", a, cb, b)
				}
			}
		}
	}
}
