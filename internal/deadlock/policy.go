package deadlock

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/updown"
)

// BuildPolicyCDG constructs the *full* continuation relation of a policy
// router: adj[a] lists every channel b such that a worm arriving on a may
// continue on b for some LCA — through a baseline up*/down* candidate or
// through the policy's extras class (deroute channels for PolicyMisroute,
// adaptive channels for PolicyDuato). For a baseline router it coincides
// with BuildCDG.
//
// Under adaptive policies this graph may legitimately contain cycles: two
// worms can each hold a channel the other's extras class covers. Deadlock
// freedom does not rest on this graph — it rests on the engine never
// *waiting* on an extras channel, so the wait-for relation is the escape
// subrelation BuildCDG computes, which VerifyPolicy certifies acyclic
// independently of the adaptive class.
func BuildPolicyCDG(r *core.Router) [][]topology.ChannelID {
	net := r.Net
	lab := r.Lab
	adj := make([][]topology.ChannelID, len(net.Channels))
	for a := range net.Channels {
		ch := &net.Channels[a]
		mid := ch.Dst
		if net.IsProcessor(mid) {
			continue // consumption channels terminate routes
		}
		arrival := core.ArrivalOf(lab.ClassOf[a])
		seen := map[topology.ChannelID]bool{}
		add := func(c topology.ChannelID) {
			if !seen[c] {
				seen[c] = true
				adj[a] = append(adj[a], c)
			}
		}
		for lcaInt := 0; lcaInt < net.NumSwitches; lcaInt++ {
			lca := topology.NodeID(lcaInt)
			if lca == mid {
				continue
			}
			for _, cand := range r.CandidateOutputs(mid, arrival, lca) {
				add(cand.Channel)
			}
			switch r.Policy() {
			case core.PolicyMisroute:
				for _, c := range r.DerouteChannels(mid, arrival, lca) {
					add(c)
				}
			case core.PolicyDuato:
				for _, c := range r.AdaptiveChannels(mid, arrival, lca) {
					add(c)
				}
			}
		}
	}
	return adj
}

// VerifyPolicy runs the static deadlock battery for a (possibly adaptive)
// policy router and returns the escape-channel rank certificate: a
// topological order of the escape (baseline-wait) CDG under which every
// wait edge strictly increases — the paper-style total-order witness that
// no blocking cycle can form, valid for any adaptive class layered on top
// because policy channels are only ever taken when instantly free, never
// waited on.
//
// Beyond the escape certificate it checks the per-cell extras invariants
// that make the adaptive classes safe:
//
//   - extras exist only for down-tree arrivals and are all down-cross
//     channels — the unique relaxable clause of the up*/down* rules; in
//     particular no extras channel climbs (phase monotonicity, which keeps
//     even the extras-enlarged relation acyclic and thereby covers Duato's
//     indirect dependencies);
//   - extras are disjoint from the cell's baseline candidates and never
//     failed channels;
//   - every extras endpoint is viable: it is the LCA or has a non-empty
//     baseline escape row toward it (a derouted worm always has legal
//     channels to fall back on, so a deroute can never strand a header);
//   - every extras hop strictly ascends the labeling's (level, id) order —
//     the lexicographic-descent witness that bounds any worm's path length,
//     so unbudgeted Duato hops terminate without a productivity filter
//     (which is provably vacuous at reachable cells; see
//     core.Router.referenceExtras).
func VerifyPolicy(r *core.Router) (map[topology.ChannelID]int, error) {
	lab := r.Lab
	if err := lab.Verify(); err != nil {
		return nil, fmt.Errorf("deadlock: labeling invariant: %w", err)
	}
	escape := BuildCDG(r)
	order, err := ChannelOrder(escape)
	if err != nil {
		return nil, fmt.Errorf("deadlock: escape class: %w", err)
	}
	for a, outs := range escape {
		for _, b := range outs {
			if order[b] <= order[topology.ChannelID(a)] {
				return nil, fmt.Errorf("deadlock: escape rank does not increase on %d -> %d", a, b)
			}
		}
	}
	if r.Policy() == core.PolicyBaseline {
		return order, nil
	}
	net := r.Net
	arrivals := []core.ArrivalClass{core.ArriveInjection, core.ArriveUp, core.ArriveDownCross, core.ArriveDownTree}
	for atInt := 0; atInt < net.NumSwitches; atInt++ {
		at := topology.NodeID(atInt)
		for _, arrival := range arrivals {
			for lcaInt := 0; lcaInt < net.NumSwitches; lcaInt++ {
				lca := topology.NodeID(lcaInt)
				der := r.DerouteChannels(at, arrival, lca)
				ada := r.AdaptiveChannels(at, arrival, lca)
				if arrival != core.ArriveDownTree {
					if len(der) != 0 || len(ada) != 0 {
						return nil, fmt.Errorf("deadlock: (%d,%v,%d): extras offered to a non-down-tree arrival", at, arrival, lca)
					}
					continue
				}
				inBase := map[topology.ChannelID]bool{}
				for _, c := range r.CandidateChannels(at, arrival, lca) {
					inBase[c] = true
				}
				inDer := map[topology.ChannelID]bool{}
				for _, c := range der {
					inDer[c] = true
					cell := fmt.Sprintf("(%d,%v,%d)", at, arrival, lca)
					if lab.IsDown(c) {
						return nil, fmt.Errorf("deadlock: %s: deroute channel %d is failed", cell, c)
					}
					if cls := lab.ClassOf[c]; cls != updown.DownCross {
						return nil, fmt.Errorf("deadlock: %s: %v deroute channel %d (extras must be down-cross)", cell, cls, c)
					}
					if inBase[c] {
						return nil, fmt.Errorf("deadlock: %s: deroute channel %d already baseline-legal", cell, c)
					}
					end := net.Chan(c).Dst
					if la, le := lab.Level[at], lab.Level[end]; la > le || (la == le && at >= end) {
						return nil, fmt.Errorf("deadlock: %s: extras hop %d does not ascend the (level, id) order (%d,%d) -> (%d,%d)",
							cell, c, la, at, le, end)
					}
					if !lab.IsExtendedAncestor(end, lca) {
						return nil, fmt.Errorf("deadlock: %s: deroute channel %d cannot complete the descent from %d", cell, c, end)
					}
					if end != lca && len(r.CandidateChannels(end, core.ArriveDownCross, lca)) == 0 {
						return nil, fmt.Errorf("deadlock: %s: deroute channel %d strands the worm at %d", cell, c, end)
					}
				}
				for _, c := range ada {
					if !inDer[c] {
						return nil, fmt.Errorf("deadlock: (%d,%v,%d): adaptive channel %d outside the deroute set", at, arrival, lca, c)
					}
				}
				if len(ada) != len(der) {
					return nil, fmt.Errorf("deadlock: (%d,%v,%d): adaptive row (%d) narrower than deroute row (%d)",
						at, arrival, lca, len(ada), len(der))
				}
			}
		}
	}
	return order, nil
}
