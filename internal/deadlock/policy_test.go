package deadlock

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/updown"
)

// policyZooSpecs spans every topology-zoo family at certificate-sweep sizes
// (the same families the core table-equivalence battery uses).
var policyZooSpecs = []string{
	"lattice:32",
	"gnm:24+12",
	"mesh:5x4",
	"torus:5x5",
	"hypercube:4",
	"fattree:2x3",
}

// policyMaskableLink finds a switch-switch channel pair whose failure keeps
// the switch graph connected under the labeling's root, by trial relabel on
// a scratch labeling.
func policyMaskableLink(lab *updown.Labeling) (*bitset.Set, bool) {
	net := lab.Net
	probe, err := updown.NewWithRoot(net, lab.Root)
	if err != nil {
		return nil, false
	}
	mask := bitset.New(len(net.Channels))
	for ci, ch := range net.Channels {
		if topology.ChannelID(ci) > ch.Reverse || net.IsProcessor(ch.Src) || net.IsProcessor(ch.Dst) {
			continue
		}
		mask.Reset()
		mask.Set(ci)
		mask.Set(int(ch.Reverse))
		if probe.Relabel(mask) == nil {
			return mask, true
		}
	}
	return nil, false
}

// certifyPolicy runs VerifyPolicy and sanity-checks the returned escape
// certificate: total over all channels, every escape dependency strictly
// rank-increasing (re-derived here from a fresh BuildCDG, independent of the
// order VerifyPolicy used internally).
func certifyPolicy(t *testing.T, label string, r *core.Router) map[topology.ChannelID]int {
	t.Helper()
	order, err := VerifyPolicy(r)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(order) != len(r.Net.Channels) {
		t.Fatalf("%s: certificate covers %d of %d channels", label, len(order), len(r.Net.Channels))
	}
	for a, outs := range BuildCDG(r) {
		for _, b := range outs {
			if order[b] <= order[topology.ChannelID(a)] {
				t.Fatalf("%s: escape rank not increasing on %d -> %d", label, a, b)
			}
		}
	}
	return order
}

// TestZooPolicyCertificates is the satellite property battery: every policy
// router (misroute with budgets 0/1/2, Duato escape) emits a CDG
// topological-order certificate on all zoo families × 3 root strategies,
// and keeps doing so through a fault-masked Relabel/Recompile round trip.
// The misroute budget is per-worm engine state, invisible to the static
// relation, so the certificate must be identical for every k — pinned
// explicitly.
//
// The escape subgraph is certified independently of the adaptive class in
// the strongest sense: the escape CDG of a policy router is channel-for-
// channel identical to the baseline router's CDG (the extras planes add
// nothing to the wait relation). And because extras never climb — phase
// monotonicity — even the *full* policy CDG (baseline ∪ extras) stays a
// DAG: down channels strictly ascend the labeling's (level, id) order, so
// a policy walk cannot return to any channel class it left. The battery
// certifies both graphs with independent Kahn orders.
func TestZooPolicyCertificates(t *testing.T) {
	strategies := []updown.RootStrategy{updown.RootMinID, updown.RootMaxDegree, updown.RootCenter}
	extrasEdges := 0
	for _, spec := range policyZooSpecs {
		sp, err := topology.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		net, err := sp.Build(1998)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, strat := range strategies {
			for _, pol := range []core.Policy{core.PolicyMisroute, core.PolicyDuato} {
				label := fmt.Sprintf("%s/%v/%v", spec, strat, pol)
				t.Run(label, func(t *testing.T) {
					lab, err := updown.New(net, strat)
					if err != nil {
						t.Fatal(err)
					}
					r := core.NewRouterPolicy(lab, pol)
					order := certifyPolicy(t, label, r)
					if pol == core.PolicyMisroute {
						// Budget k lives in per-worm engine state; the
						// static certificate must not depend on it.
						for k := 0; k <= 2; k++ {
							again := certifyPolicy(t, fmt.Sprintf("%s/k=%d", label, k), r)
							for c, rk := range order {
								if again[c] != rk {
									t.Fatalf("%s: certificate differs at budget %d (channel %d: %d vs %d)", label, k, c, rk, again[c])
								}
							}
						}
					}
					// Escape-class independence: the policy router's wait
					// relation is exactly the baseline router's CDG.
					escape := BuildCDG(r)
					baseCDG := BuildCDG(core.NewRouter(lab))
					for a := range escape {
						if len(escape[a]) != len(baseCDG[a]) {
							t.Fatalf("%s: escape CDG differs from baseline at channel %d", label, a)
						}
						for i, b := range escape[a] {
							if baseCDG[a][i] != b {
								t.Fatalf("%s: escape CDG differs from baseline at channel %d", label, a)
							}
						}
					}
					// Full-relation certificate: phase monotonicity keeps
					// even the extras-enlarged relation sortable. (As a
					// channel-to-channel union it in fact coincides with
					// the escape CDG — an extras channel is baseline-legal
					// toward its own endpoint — which is exactly why the
					// adaptive class cannot manufacture new wait cycles;
					// the per-cell extras are counted below instead.)
					full := BuildPolicyCDG(r)
					if _, err := ChannelOrder(full); err != nil {
						t.Fatalf("%s: full policy CDG: %v", label, err)
					}
					for at := 0; at < net.NumSwitches; at++ {
						for lca := 0; lca < net.NumSwitches; lca++ {
							extrasEdges += len(r.DerouteChannels(topology.NodeID(at), core.ArriveDownTree, topology.NodeID(lca)))
						}
					}

					mask, ok := policyMaskableLink(lab)
					if !ok {
						t.Skipf("%s: no maskable link (tree network)", label)
					}
					if err := lab.Relabel(mask); err != nil {
						t.Fatal(err)
					}
					r.Recompile(lab)
					certifyPolicy(t, label+"/masked", r)

					if err := lab.Relabel(nil); err != nil {
						t.Fatal(err)
					}
					r.Recompile(lab)
					restored := certifyPolicy(t, label+"/restored", r)
					for c, rk := range order {
						if restored[c] != rk {
							t.Fatalf("%s: certificate not restored after round trip (channel %d: %d vs %d)", label, c, rk, restored[c])
						}
					}
				})
			}
		}
	}
	// The adaptive class must genuinely enlarge the relation somewhere, or
	// the escape-vs-full split this battery certifies would be vacuous.
	if extrasEdges == 0 {
		t.Errorf("no zoo family produced any extras edge — policy CDG battery is vacuous")
	}
}
