// Package deadlock provides static evidence for SPAM's deadlock freedom
// (Theorem 1) and a runtime checker over live simulators.
//
// Static check: build the channel dependency graph (CDG) of the unicast
// relation — there is an arc from channel a to channel b when some legal
// route can hold a while requesting b, i.e. when b is a legal next channel
// after arriving on a for some destination. Duato/Dally theory: if the CDG
// is acyclic, the routing function is deadlock-free for unicast worms. The
// multicast distribution phase only adds down-tree channels acquired
// root-to-leaf with atomic OCRQ requests, which cannot close a cycle either;
// the dynamic stress tests in internal/sim exercise that part.
package deadlock
