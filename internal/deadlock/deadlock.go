package deadlock

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/updown"
)

// BuildCDG constructs the channel dependency graph of the SPAM unicast
// routing relation: adj[a] lists every channel b such that a worm can
// arrive on a and legally continue on b (for at least one destination).
func BuildCDG(r *core.Router) [][]topology.ChannelID {
	net := r.Net
	lab := r.Lab
	adj := make([][]topology.ChannelID, len(net.Channels))
	for a := range net.Channels {
		ch := &net.Channels[a]
		mid := ch.Dst
		if net.IsProcessor(mid) {
			continue // consumption channels terminate routes
		}
		arrival := core.ArrivalOf(lab.ClassOf[a])
		seen := map[topology.ChannelID]bool{}
		// A continuation is legal if it is offered for some destination
		// switch: union CandidateOutputs over all destinations.
		for lcaInt := 0; lcaInt < net.NumSwitches; lcaInt++ {
			lca := topology.NodeID(lcaInt)
			if lca == mid {
				// Route ends here for this LCA; continuation is a
				// consumption channel, which never cycles.
				continue
			}
			for _, cand := range r.CandidateOutputs(mid, arrival, lca) {
				if !seen[cand.Channel] {
					seen[cand.Channel] = true
					adj[a] = append(adj[a], cand.Channel)
				}
			}
		}
	}
	return adj
}

// FindCycle returns a cycle in the dependency graph, or nil if acyclic.
func FindCycle(adj [][]topology.ChannelID) []topology.ChannelID {
	const (
		white = iota
		gray
		black
	)
	color := make([]uint8, len(adj))
	parent := make([]topology.ChannelID, len(adj))
	for i := range parent {
		parent[i] = topology.None
	}
	var cycle []topology.ChannelID
	// Iterative DFS with an explicit stack (networks can be large).
	type frame struct {
		node topology.ChannelID
		next int
	}
	for start := range adj {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: topology.ChannelID(start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				v := adj[f.node][f.next]
				f.next++
				switch color[v] {
				case white:
					color[v] = gray
					parent[v] = f.node
					stack = append(stack, frame{node: v})
				case gray:
					// Cycle v -> ... -> f.node -> v.
					cycle = append(cycle, v)
					for x := f.node; x != v; x = parent[x] {
						cycle = append(cycle, x)
					}
					return cycle
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// VerifyStatic runs the full static battery over a labeled network:
// labeling invariants plus CDG acyclicity. It returns a descriptive error
// on the first violation.
func VerifyStatic(lab *updown.Labeling) error {
	if err := lab.Verify(); err != nil {
		return fmt.Errorf("deadlock: labeling invariant: %w", err)
	}
	r := core.NewRouter(lab)
	adj := BuildCDG(r)
	if cyc := FindCycle(adj); cyc != nil {
		return fmt.Errorf("deadlock: channel dependency cycle of length %d: %v", len(cyc), cyc)
	}
	return nil
}

// ChannelOrder computes the paper-style total order witness for acyclicity:
// a topological order of the CDG (channel -> rank). It errors if the graph
// has a cycle. Tests use it as an independent certificate: every dependency
// must strictly increase in rank.
func ChannelOrder(adj [][]topology.ChannelID) (map[topology.ChannelID]int, error) {
	n := len(adj)
	indeg := make([]int, n)
	for _, outs := range adj {
		for _, v := range outs {
			indeg[v]++
		}
	}
	queue := make([]topology.ChannelID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, topology.ChannelID(i))
		}
	}
	order := make(map[topology.ChannelID]int, n)
	rank := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order[u] = rank
		rank++
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if rank != n {
		return nil, fmt.Errorf("deadlock: %d channels unsortable (cycle)", n-rank)
	}
	return order, nil
}
