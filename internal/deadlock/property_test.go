package deadlock_test

import (
	"testing"

	spamnet "repro"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/updown"
)

// verifyAcyclic asserts the full deadlock-freedom battery on one labeling:
// labeling invariants, CDG acyclicity, and the independent topological-order
// certificate (every dependency strictly increases in rank).
func verifyAcyclic(t *testing.T, lab *updown.Labeling, label string) {
	t.Helper()
	if err := deadlock.VerifyStatic(lab); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	adj := deadlock.BuildCDG(core.NewRouter(lab))
	order, err := deadlock.ChannelOrder(adj)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for a, outs := range adj {
		for _, b := range outs {
			if order[topology.ChannelID(a)] >= order[b] {
				t.Fatalf("%s: dependency %d->%d does not increase in rank", label, a, b)
			}
		}
	}
}

// interSwitchLinks lists the distinct switch-switch links of a network as
// (u, v) pairs with u < v.
func interSwitchLinks(net *topology.Network) [][2]int {
	var out [][2]int
	for _, ch := range net.Channels {
		if net.IsSwitch(ch.Src) && net.IsSwitch(ch.Dst) && ch.Src < ch.Dst {
			out = append(out, [2]int{int(ch.Src), int(ch.Dst)})
		}
	}
	return out
}

// TestUpDownAcyclicOnRandomTopologies is the up*/down* channel-dependency
// acyclicity property on 50 seeded random topologies — half lattices built
// through the public facade, half unconstrained G(n,m) irregular networks —
// each followed by random link-failure batches: lattices go through
// System.Reconfigure (the Autonet-style relabeling path), irregular networks
// through WithoutLink + fresh labeling. Every surviving configuration must
// keep the CDG acyclic; a cycle anywhere would void Theorem 1.
func TestUpDownAcyclicOnRandomTopologies(t *testing.T) {
	r := rng.New(20260727)
	strategies := []updown.RootStrategy{updown.RootMinID, updown.RootMaxDegree, updown.RootCenter}

	// Facade half: lattices + Reconfigure batches.
	for seed := uint64(0); seed < 25; seed++ {
		n := 8 + int(seed%5)*8
		sys, err := spamnet.NewLattice(n,
			spamnet.WithSeed(seed*7919+3),
			spamnet.WithRootStrategy(strategies[seed%3]))
		if err != nil {
			t.Fatalf("lattice %d: %v", seed, err)
		}
		verifyAcyclic(t, sys.Labeling(), "lattice")
		// Up to 3 failure batches of 1-2 links each; batches that would
		// disconnect the network are rejected by Reconfigure and skipped.
		for batch := 0; batch < 3; batch++ {
			links := interSwitchLinks(sys.Topology())
			if len(links) == 0 {
				break
			}
			k := 1 + r.Intn(2)
			var failed [][2]int
			for _, idx := range r.Choose(len(links), min(k, len(links))) {
				failed = append(failed, links[idx])
			}
			next, err := sys.Reconfigure(failed)
			if err != nil {
				continue // disconnecting batch: correctly refused
			}
			sys = next
			verifyAcyclic(t, sys.Labeling(), "lattice post-reconfigure")
		}
	}

	// Irregular half: G(n,m) networks + WithoutLink batches.
	for seed := uint64(0); seed < 25; seed++ {
		n := 6 + int(seed%6)*5
		net, err := topology.RandomIrregular(topology.GNMConfig{
			Switches:   n,
			ExtraLinks: n/2 + int(seed%4),
			Seed:       seed*104729 + 11,
		})
		if err != nil {
			t.Fatalf("irregular %d: %v", seed, err)
		}
		lab, err := updown.New(net, strategies[seed%3])
		if err != nil {
			t.Fatalf("irregular %d labeling: %v", seed, err)
		}
		verifyAcyclic(t, lab, "irregular")
		for batch := 0; batch < 2; batch++ {
			links := interSwitchLinks(net)
			if len(links) == 0 {
				break
			}
			l := links[r.Intn(len(links))]
			smaller, err := net.WithoutLink(l[0], l[1])
			if err != nil {
				continue // bridge link: removal would disconnect
			}
			net = smaller
			lab, err = updown.New(net, strategies[seed%3])
			if err != nil {
				t.Fatalf("irregular %d relabel: %v", seed, err)
			}
			verifyAcyclic(t, lab, "irregular post-failure")
		}
	}
}
