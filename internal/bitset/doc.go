// Package bitset provides a dense, fixed-capacity bitset used throughout the
// repository for ancestor sets, extended-ancestor sets and destination sets.
//
// The zero value of Set is an empty set of capacity zero; use New to allocate
// capacity. All operations that combine two sets require equal word lengths.
package bitset
