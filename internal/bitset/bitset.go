package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset backed by a []uint64.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set capable of holding bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is 1.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets s to s ∪ other.
func (s *Set) Or(other *Set) {
	s.sameLen(other)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// And sets s to s ∩ other.
func (s *Set) And(other *Set) {
	s.sameLen(other)
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// AndNot sets s to s \ other.
func (s *Set) AndNot(other *Set) {
	s.sameLen(other)
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s ∩ other is non-empty.
func (s *Set) Intersects(other *Set) bool {
	s.sameLen(other)
	for i, w := range other.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Contains reports whether every bit of other is also set in s.
func (s *Set) Contains(other *Set) bool {
	s.sameLen(other)
	for i, w := range other.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and other hold exactly the same bits.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range other.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// AndCount returns |s ∩ other| without materializing the intersection.
// The loop is unrolled four words at a time so the popcounts pipeline; on
// amd64 each OnesCount64 compiles to a single POPCNT.
func (s *Set) AndCount(other *Set) int {
	s.sameLen(other)
	a, b := s.words, other.words
	c := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// AndAny reports whether s ∩ other is non-empty — Intersects under the
// fused-kernel naming, kept as its own entry point so call sites read as a
// family (AndCount / AndAny / AndInto).
func (s *Set) AndAny(other *Set) bool {
	return s.Intersects(other)
}

// AndInto sets dst to a ∩ b without touching a or b. All three sets must
// share a capacity; dst may alias either operand.
func (dst *Set) AndInto(a, b *Set) {
	dst.sameLen(a)
	dst.sameLen(b)
	aw, bw, dw := a.words, b.words, dst.words
	i := 0
	for ; i+4 <= len(dw); i += 4 {
		dw[i] = aw[i] & bw[i]
		dw[i+1] = aw[i+1] & bw[i+1]
		dw[i+2] = aw[i+2] & bw[i+2]
		dw[i+3] = aw[i+3] & bw[i+3]
	}
	for ; i < len(dw); i++ {
		dw[i] = aw[i] & bw[i]
	}
}

// Word returns the i-th 64-bit word of the backing storage (bits
// [64i, 64i+64)). Table compilation reads relation rows word-wise through
// this to build per-block membership masks.
func (s *Set) Word(i int) uint64 { return s.words[i] }

// Words returns the number of backing words.
func (s *Set) Words() int { return len(s.words) }

func (s *Set) sameLen(other *Set) {
	if len(s.words) != len(other.words) {
		panic(fmt.Sprintf("bitset: mismatched capacities %d vs %d", s.n, other.n))
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every set bit in ascending order. If fn returns false
// the iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the indices of all set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as {a, b, c}.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// FromMembers builds a set of capacity n containing the given members.
func FromMembers(n int, members ...int) *Set {
	s := New(n)
	for _, m := range members {
		s.Set(m)
	}
	return s
}
