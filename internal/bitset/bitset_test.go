package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
	if s.Any() {
		t.Fatal("new set reports Any()=true")
	}
	if s.Len() != 100 {
		t.Fatalf("Len=%d want 100", s.Len())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count=%d want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count=%d want 7", got)
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(3)
	if s.Count() != 1 {
		t.Fatalf("Count=%d want 1", s.Count())
	}
	s.Clear(3)
	s.Clear(3)
	if s.Count() != 0 {
		t.Fatalf("Count=%d want 0", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for index %d", i)
				}
			}()
			s.Set(i)
		}()
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for New(-1)")
		}
	}()
	New(-1)
}

func TestOrAndAndNot(t *testing.T) {
	a := FromMembers(200, 1, 5, 70, 150)
	b := FromMembers(200, 5, 71, 150, 199)

	u := a.Clone()
	u.Or(b)
	want := []int{1, 5, 70, 71, 150, 199}
	if got := u.Members(); !intsEqual(got, want) {
		t.Fatalf("Or members=%v want %v", got, want)
	}

	i := a.Clone()
	i.And(b)
	if got := i.Members(); !intsEqual(got, []int{5, 150}) {
		t.Fatalf("And members=%v", got)
	}

	d := a.Clone()
	d.AndNot(b)
	if got := d.Members(); !intsEqual(got, []int{1, 70}) {
		t.Fatalf("AndNot members=%v", got)
	}
}

func TestIntersectsContains(t *testing.T) {
	a := FromMembers(100, 1, 2, 3)
	b := FromMembers(100, 3, 4)
	c := FromMembers(100, 4, 5)
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
	if !a.Contains(FromMembers(100, 1, 3)) {
		t.Fatal("a should contain {1,3}")
	}
	if a.Contains(b) {
		t.Fatal("a should not contain b")
	}
	empty := New(100)
	if !a.Contains(empty) {
		t.Fatal("every set contains the empty set")
	}
}

func TestEqual(t *testing.T) {
	a := FromMembers(100, 1, 99)
	b := FromMembers(100, 1, 99)
	c := FromMembers(100, 1)
	if !a.Equal(b) {
		t.Fatal("a != b")
	}
	if a.Equal(c) {
		t.Fatal("a == c")
	}
	if a.Equal(FromMembers(101, 1, 99)) {
		t.Fatal("sets of different capacity compared equal")
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	a := New(64)
	b := New(129)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Or")
		}
	}()
	a.Or(b)
}

func TestCloneIndependence(t *testing.T) {
	a := FromMembers(64, 1, 2)
	b := a.Clone()
	b.Set(3)
	if a.Test(3) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReset(t *testing.T) {
	a := FromMembers(64, 0, 63)
	a.Reset()
	if a.Any() {
		t.Fatal("Reset left bits set")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	a := FromMembers(64, 1, 2, 3, 4)
	var seen []int
	a.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !intsEqual(seen, []int{1, 2}) {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestNextSet(t *testing.T) {
	a := FromMembers(200, 0, 64, 130)
	cases := []struct{ from, want int }{
		{-5, 0}, {0, 0}, {1, 64}, {64, 64}, {65, 130}, {130, 130}, {131, -1}, {500, -1},
	}
	for _, c := range cases {
		if got := a.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d)=%d want %d", c.from, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(10, 1, 3).String(); got != "{1, 3}" {
		t.Fatalf("String=%q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("empty String=%q", got)
	}
}

// Property: Members of FromMembers round-trips a deduplicated sorted list.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		s := New(n)
		uniq := map[int]bool{}
		for _, r := range raw {
			s.Set(int(r))
			uniq[int(r)] = true
		}
		if s.Count() != len(uniq) {
			return false
		}
		for _, m := range s.Members() {
			if !uniq[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| - |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rnd.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rnd.Intn(2) == 0 {
				a.Set(i)
			}
			if rnd.Intn(2) == 0 {
				b.Set(i)
			}
		}
		u := a.Clone()
		u.Or(b)
		x := a.Clone()
		x.And(b)
		if u.Count() != a.Count()+b.Count()-x.Count() {
			t.Fatalf("inclusion-exclusion failed n=%d", n)
		}
	}
}

// Property: AndNot(b) then Intersects(b) is always false.
func TestQuickAndNotDisjoint(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rnd.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rnd.Intn(2) == 0 {
				a.Set(i)
			}
			if rnd.Intn(3) == 0 {
				b.Set(i)
			}
		}
		a.AndNot(b)
		if a.Intersects(b) {
			t.Fatalf("AndNot result intersects subtrahend n=%d", n)
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickFusedKernels pins the fused AND family against the materializing
// equivalents: AndCount(b) == Count(a∩b), AndAny(b) == Intersects(b), and
// AndInto(a,b) == Clone(a).And(b), on random sets of awkward lengths.
func TestQuickFusedKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Set(i)
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		want := a.Clone()
		want.And(b)
		if got := a.AndCount(b); got != want.Count() {
			t.Fatalf("n=%d: AndCount=%d, materialized count=%d", n, got, want.Count())
		}
		if got := a.AndAny(b); got != a.Intersects(b) {
			t.Fatalf("n=%d: AndAny=%v, Intersects=%v", n, got, a.Intersects(b))
		}
		dst := New(n)
		dst.Set(0) // stale content must be overwritten
		dst.AndInto(a, b)
		if !dst.Equal(want) {
			t.Fatalf("n=%d: AndInto != materialized And", n)
		}
		// Kernels must not mutate their operands.
		if got := a.AndCount(b); got != want.Count() {
			t.Fatalf("n=%d: AndCount mutated an operand", n)
		}
	}
}
