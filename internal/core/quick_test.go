package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/updown"
)

// quickRouter builds a router from arbitrary generator inputs, clamping
// them into valid ranges so every generated case is meaningful.
func quickRouter(t *testing.T, seed uint64, sizeSel uint8, rootSel uint8) *Router {
	t.Helper()
	n := 4 + int(sizeSel%48)
	net, err := topology.RandomLattice(topology.DefaultLattice(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootStrategy(rootSel%3))
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(lab)
}

// Property (quick): for arbitrary topology seeds, sources and destination
// subsets, the greedy SPAM route to the LCA is legal and the distribution
// tree covers exactly the destinations.
func TestQuickRoutingTotalAndLegal(t *testing.T) {
	f := func(seed uint64, sizeSel, rootSel uint8, srcSel uint16, destBits uint64) bool {
		r := quickRouter(t, seed, sizeSel, rootSel)
		net := r.Net
		src := topology.NodeID(net.NumSwitches + int(srcSel)%net.NumProcs)
		var dests []topology.NodeID
		for i := 0; i < net.NumProcs && i < 64; i++ {
			if destBits&(1<<uint(i)) != 0 {
				d := topology.NodeID(net.NumSwitches + i)
				if d != src {
					dests = append(dests, d)
				}
			}
		}
		if len(dests) == 0 {
			dests = []topology.NodeID{topology.NodeID(net.NumSwitches + (int(srcSel)+1)%net.NumProcs)}
			if dests[0] == src {
				return true // degenerate single-proc case
			}
		}
		lca := r.LCASwitch(dests)
		path, err := r.Phase1Path(src, lca)
		if err != nil {
			return false
		}
		if err := r.CheckLegalUnicastPath(src, lca, path); err != nil {
			return false
		}
		ds, err := r.DestSet(dests)
		if err != nil {
			return false
		}
		// Walk the distribution tree and count leaf deliveries.
		reached := 0
		var walk func(sw topology.NodeID)
		walk = func(sw topology.NodeID) {
			for _, c := range r.DistributionOutputs(sw, ds) {
				dst := net.Chan(c).Dst
				if net.IsProcessor(dst) {
					reached++
				} else {
					walk(dst)
				}
			}
		}
		walk(lca)
		return reached == len(dests)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): the selection function's first candidate never
// increases the distance to the LCA unless no decreasing channel is legal,
// and the greedy walk's distance sequence is eventually strictly
// decreasing (termination witness).
func TestQuickGreedyDistanceProgress(t *testing.T) {
	f := func(seed uint64, sizeSel, rootSel uint8, a, b uint16) bool {
		r := quickRouter(t, seed, sizeSel, rootSel)
		net := r.Net
		src := topology.NodeID(net.NumSwitches + int(a)%net.NumProcs)
		lca := topology.NodeID(int(b) % net.NumSwitches)
		path, err := r.Phase1Path(src, lca)
		if err != nil {
			return false
		}
		// The final hop must land exactly on the LCA and the path length
		// must be bounded by the termination guard.
		if net.Chan(path[len(path)-1]).Dst != lca {
			return false
		}
		return len(path) <= 4*net.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): ZeroLoadLatency equals the latency reconstructed from
// MulticastPaths by hand.
func TestQuickZeroLoadLatencyConsistent(t *testing.T) {
	p := PaperParams()
	f := func(seed uint64, sizeSel, rootSel uint8, srcSel uint16, k uint8) bool {
		r := quickRouter(t, seed, sizeSel, rootSel)
		net := r.Net
		rand := rng.New(seed ^ 0xabcd)
		src := topology.NodeID(net.NumSwitches + int(srcSel)%net.NumProcs)
		kk := 1 + int(k)%net.NumProcs
		if kk > net.NumProcs-1 {
			kk = net.NumProcs - 1
		}
		if kk == 0 {
			return true
		}
		var dests []topology.NodeID
		srcIdx := int(src) - net.NumSwitches
		for _, v := range rand.Choose(net.NumProcs-1, kk) {
			if v >= srcIdx {
				v++
			}
			dests = append(dests, topology.NodeID(net.NumSwitches+v))
		}
		lat, err := r.ZeroLoadLatency(p, src, dests)
		if err != nil {
			return false
		}
		paths, err := r.MulticastPaths(src, dests)
		if err != nil {
			return false
		}
		var worst int64
		for _, path := range paths {
			h := int64(len(path))
			if v := p.RouterSetupNs*(h-1) + p.ChanPropNs*h; v > worst {
				worst = v
			}
		}
		return lat == p.StartupNs+worst+int64(p.MessageFlits-1)*p.ChanPropNs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
