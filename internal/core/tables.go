package core

import (
	"encoding/binary"
	"sort"

	"repro/internal/topology"
	"repro/internal/updown"
)

// Tables is the compiled, table-driven form of the SPAM routing and selection
// functions — the software analogue of the routing tables the paper's
// hardware router would hold. Where the reference implementation filters,
// allocates and sorts a fresh candidate list on every header arrival, Tables
// answers the same query with one index computation and a slice of a shared
// arena: candidates(class, at, lca) is the exact slice ReferenceCandidate-
// Outputs would produce (same channels, same (DistToLCA, ChannelID) order).
//
// Memory model. The row *index* is a dense numClasses × switches × switches
// array of 8-byte (offset, length) references — O(3·S²) and unavoidable for
// O(1) lookup. The candidate *contents* live in one flat arena deduplicated
// across rows: two (class, at, lca) cells whose candidate lists are
// byte-identical share one arena range. Rows repeat heavily in practice
// (e.g. a down-tree arrival at switch s yields the same short list for every
// LCA in the same child subtree), so the arena stays near O(S · degree)
// rather than the naive O(S² · degree) of storing every row separately.
type Tables struct {
	numSwitches int
	// rows is indexed by (class*numSwitches + at)*numSwitches + lca.
	rows []tableRow
	// arena backs every row; rows with identical contents share a range.
	arena []topology.ChannelID
}

// tableRow is one (offset, length) reference into the shared arena.
type tableRow struct {
	off uint32
	n   uint32
}

// numClasses counts the distinct arrival behaviours. ArriveInjection is
// legality-equivalent to ArriveUp (the first hop of every route behaves like
// an up arrival), so the two share the class-0 rows.
const numClasses = 3

// classIndex collapses the four arrival classes onto the three distinct
// legality behaviours.
func classIndex(a ArrivalClass) int {
	switch a {
	case ArriveInjection, ArriveUp:
		return 0
	case ArriveDownCross:
		return 1
	default: // ArriveDownTree
		return 2
	}
}

// compileTables builds the full candidate table for a labeling by evaluating
// the reference routing function once per (class, at, lca) cell at
// construction time. Every row is produced in the paper's selection order —
// ascending distance from the channel endpoint to the LCA, channel ID as the
// tiebreak — so lookups need no per-event sort.
func compileTables(lab *updown.Labeling) *Tables {
	net := lab.Net
	s := net.NumSwitches
	t := &Tables{
		numSwitches: s,
		rows:        make([]tableRow, numClasses*s*s),
	}

	// Per-switch inter-switch output channels (consumption channels are
	// distribution-only and never candidates), collected once.
	switchOuts := make([][]topology.ChannelID, s)
	for at := 0; at < s; at++ {
		for _, c := range net.Out(topology.NodeID(at)) {
			if net.IsSwitch(net.Chan(c).Dst) {
				switchOuts[at] = append(switchOuts[at], c)
			}
		}
	}

	arrivalOfClass := [numClasses]ArrivalClass{ArriveUp, ArriveDownCross, ArriveDownTree}
	seen := make(map[string]tableRow)
	row := make([]Candidate, 0, 16)
	key := make([]byte, 0, 64)
	for class := 0; class < numClasses; class++ {
		arrival := arrivalOfClass[class]
		for at := 0; at < s; at++ {
			for lca := 0; lca < s; lca++ {
				row = appendLegalCandidates(row[:0], lab, switchOuts[at], arrival, topology.NodeID(lca))
				sortCandidates(row)

				key = key[:0]
				for _, cand := range row {
					key = binary.LittleEndian.AppendUint32(key, uint32(cand.Channel))
				}
				ref, ok := seen[string(key)]
				if !ok {
					ref = tableRow{off: uint32(len(t.arena)), n: uint32(len(row))}
					for _, cand := range row {
						t.arena = append(t.arena, cand.Channel)
					}
					seen[string(key)] = ref
				}
				t.rows[(class*s+at)*s+lca] = ref
			}
		}
	}
	return t
}

// appendLegalCandidates applies the up*/down* legality rules (identical to
// ReferenceCandidateOutputs) to a pre-filtered inter-switch channel list.
func appendLegalCandidates(dst []Candidate, lab *updown.Labeling, outs []topology.ChannelID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	for _, c := range outs {
		end := lab.Net.Chan(c).Dst
		switch lab.ClassOf[c] {
		case updown.Up:
			if arrival != ArriveUp && arrival != ArriveInjection {
				continue
			}
		case updown.DownCross:
			if arrival == ArriveDownTree {
				continue
			}
			if !lab.IsExtendedAncestor(end, lcaSwitch) {
				continue
			}
		case updown.DownTree:
			if !lab.IsAncestor(end, lcaSwitch) {
				continue
			}
		}
		dst = append(dst, Candidate{Channel: c, DistToLCA: lab.SwitchDist[end][lcaSwitch]})
	}
	return dst
}

// sortCandidates orders candidates by the paper's selection priority.
func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].DistToLCA != cands[j].DistToLCA {
			return cands[i].DistToLCA < cands[j].DistToLCA
		}
		return cands[i].Channel < cands[j].Channel
	})
}

// candidates returns the precompiled row for (arrival, at, lca). The slice
// aliases the shared arena: callers must treat it as immutable.
func (t *Tables) candidates(arrival ArrivalClass, at, lcaSwitch topology.NodeID) []topology.ChannelID {
	ref := t.rows[(classIndex(arrival)*t.numSwitches+int(at))*t.numSwitches+int(lcaSwitch)]
	return t.arena[ref.off : ref.off+ref.n : ref.off+ref.n]
}

// MemoryFootprint reports the compiled table sizes: the number of index
// cells, the arena length in channel IDs, and the number of channel IDs a
// non-deduplicated arena would hold. Exposed for diagnostics and tests.
func (t *Tables) MemoryFootprint() (indexCells, arenaLen, naiveArenaLen int) {
	for _, r := range t.rows {
		naiveArenaLen += int(r.n)
	}
	return len(t.rows), len(t.arena), naiveArenaLen
}
