package core

import (
	"repro/internal/topology"
	"repro/internal/updown"
)

// Tables is the compiled, table-driven form of the SPAM routing and selection
// functions — the software analogue of the routing tables the paper's
// hardware router would hold. Where the reference implementation filters,
// allocates and sorts a fresh candidate list on every header arrival, Tables
// answers the same query with one index computation and a slice of a shared
// arena: candidates(class, at, lca) is the exact slice ReferenceCandidate-
// Outputs would produce (same channels, same (DistToLCA, ChannelID) order).
//
// Memory model. The row *index* is a dense numClasses × switches × switches
// array of 8-byte (offset, length) references — O(3·S²) and unavoidable for
// O(1) lookup. The candidate *contents* live in one flat arena deduplicated
// across rows: two (class, at, lca) cells whose candidate lists are
// identical share one arena range. Rows repeat heavily in practice
// (e.g. a down-tree arrival at switch s yields the same short list for every
// LCA in the same child subtree), so the arena stays near O(S · degree)
// rather than the naive O(S² · degree) of storing every row separately.
//
// Reconfiguration. Recompile rebuilds the whole structure for a *new*
// labeling of the same network into the retained rows, arena and dedup
// scratch — zero allocations once the arena has grown to its high-water
// mark. This is the hot half of live fault reconfiguration: relabel the
// masked topology, recompile in place, and the router serves the new tables
// from the next event on.
type Tables struct {
	numSwitches int
	// rows is indexed by (class*numSwitches + at)*numSwitches + lca.
	rows []tableRow
	// arena backs every row; rows with identical contents share a range.
	arena []topology.ChannelID
	// switchOuts caches the inter-switch output channels per switch —
	// static for the lifetime of the network (failed links are masked by
	// the labeling, not removed from the hardware).
	switchOuts [][]topology.ChannelID
	// seen dedups rows across recompiles: FNV-1a hash of the row content
	// to its first arena reference. A (vanishingly unlikely) hash
	// collision is detected by content comparison and merely stores the
	// row twice — correctness never depends on hash uniqueness. Keying by
	// uint64 instead of string keeps Recompile allocation-free.
	seen map[uint64]tableRow
	// row is the per-cell candidate scratch.
	row []Candidate
	// live is the per-switch compile scratch: the current labeling's live
	// channels of the switch split by class (indexed by the class-0/1/2
	// scheme below), with endpoints cached.
	live [numClasses][]liveChan
}

// liveChan caches a live (non-failed) inter-switch channel with its
// endpoint for the compile inner loop.
type liveChan struct {
	c   topology.ChannelID
	end topology.NodeID
}

// tableRow is one (offset, length) reference into the shared arena.
type tableRow struct {
	off uint32
	n   uint32
}

// numClasses counts the distinct arrival behaviours. ArriveInjection is
// legality-equivalent to ArriveUp (the first hop of every route behaves like
// an up arrival), so the two share the class-0 rows.
const numClasses = 3

// classIndex collapses the four arrival classes onto the three distinct
// legality behaviours.
func classIndex(a ArrivalClass) int {
	switch a {
	case ArriveInjection, ArriveUp:
		return 0
	case ArriveDownCross:
		return 1
	default: // ArriveDownTree
		return 2
	}
}

// compileTables builds the full candidate table for a labeling by evaluating
// the reference routing function once per (class, at, lca) cell.
func compileTables(lab *updown.Labeling) *Tables {
	net := lab.Net
	s := net.NumSwitches
	t := &Tables{
		numSwitches: s,
		rows:        make([]tableRow, numClasses*s*s),
		switchOuts:  make([][]topology.ChannelID, s),
		seen:        make(map[uint64]tableRow),
		row:         make([]Candidate, 0, 16),
	}
	// Per-switch inter-switch output channels (consumption channels are
	// distribution-only and never candidates), collected once.
	for at := 0; at < s; at++ {
		for _, c := range net.Out(topology.NodeID(at)) {
			if net.IsSwitch(net.Chan(c).Dst) {
				t.switchOuts[at] = append(t.switchOuts[at], c)
			}
		}
	}
	t.Recompile(lab)
	return t
}

// Recompile rebuilds every row for a (new) labeling of the same network,
// reusing the index, the arena and the dedup scratch. Every row is produced
// in the paper's selection order — ascending distance from the channel
// endpoint to the LCA, channel ID as the tiebreak — so lookups need no
// per-event sort. After the arena has reached its high-water mark the call
// performs no heap allocation.
//
// The compile loop is shaped for the live-reconfiguration hot path (a fault
// event pays one Recompile): the switch's live channels are split by class
// once per switch instead of re-testing failure and class per cell; empty
// rows — the majority, since down arrivals are only routable toward LCAs in
// the right subtree — bypass the dedup map entirely; and selection
// distances read the LCA's row of the (symmetric) distance matrix so the
// inner loop walks memory sequentially.
func (t *Tables) Recompile(lab *updown.Labeling) {
	s := t.numSwitches
	t.arena = t.arena[:0]
	clear(t.seen)
	for at := 0; at < s; at++ {
		// Split the switch's live inter-switch channels by class. The
		// class-0 row of a cell is up ∪ legal(down-cross) ∪ legal(down-
		// tree), class 1 drops the ups, class 2 keeps only down-tree; the
		// final sort by (dist, channel) makes append order irrelevant.
		for k := range t.live {
			t.live[k] = t.live[k][:0]
		}
		for _, c := range t.switchOuts[at] {
			if lab.IsDown(c) {
				continue
			}
			end := lab.Net.Chan(c).Dst
			var k int
			switch lab.ClassOf[c] {
			case updown.Up:
				k = 0
			case updown.DownCross:
				k = 1
			default:
				k = 2
			}
			t.live[k] = append(t.live[k], liveChan{c: c, end: end})
		}
		for lca := 0; lca < s; lca++ {
			lcaSwitch := topology.NodeID(lca)
			// SwitchDist is symmetric (undirected hop counts), so the
			// LCA's row serves every endpoint lookup of this cell.
			distRow := lab.SwitchDist[lca]
			row := t.row[:0]
			for _, lc := range t.live[1] {
				if lab.IsExtendedAncestor(lc.end, lcaSwitch) {
					row = append(row, Candidate{Channel: lc.c, DistToLCA: distRow[lc.end]})
				}
			}
			downCross := len(row)
			for _, lc := range t.live[2] {
				if lab.IsAncestor(lc.end, lcaSwitch) {
					row = append(row, Candidate{Channel: lc.c, DistToLCA: distRow[lc.end]})
				}
			}
			downAny := len(row)
			// Class 2 (down-tree arrival): down-tree candidates only.
			t.row = row
			t.rows[(2*s+at)*s+lca] = t.internRow(row[downCross:downAny])
			// Class 1 (down-cross arrival): down-cross ∪ down-tree.
			t.rows[(1*s+at)*s+lca] = t.internRow(row[:downAny])
			// Class 0 (up/injection arrival): everything plus the ups.
			for _, lc := range t.live[0] {
				row = append(row, Candidate{Channel: lc.c, DistToLCA: distRow[lc.end]})
			}
			t.row = row
			t.rows[(0*s+at)*s+lca] = t.internRow(row)
		}
	}
}

// internRow sorts a candidate row into selection order and returns its
// (deduplicated) arena reference. The row slice is scratch owned by the
// caller; interning copies the channels out.
func (t *Tables) internRow(row []Candidate) tableRow {
	if len(row) == 0 {
		return tableRow{}
	}
	sortCandidates(row)
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for _, cand := range row {
		h ^= uint64(uint32(cand.Channel))
		h *= 1099511628211
	}
	ref, ok := t.seen[h]
	if ok && !t.rowEqual(ref, row) {
		ok = false // hash collision: store separately
	}
	if !ok {
		ref = tableRow{off: uint32(len(t.arena)), n: uint32(len(row))}
		for _, cand := range row {
			t.arena = append(t.arena, cand.Channel)
		}
		t.seen[h] = ref
	}
	return ref
}

// rowEqual reports whether the arena range ref holds exactly the channels of
// row, in order.
func (t *Tables) rowEqual(ref tableRow, row []Candidate) bool {
	if int(ref.n) != len(row) {
		return false
	}
	for i, cand := range row {
		if t.arena[int(ref.off)+i] != cand.Channel {
			return false
		}
	}
	return true
}

// sortCandidates orders candidates by the paper's selection priority:
// ascending (DistToLCA, ChannelID). The key is a total order (channel IDs
// are unique), so the insertion sort — allocation-free, unlike sort.Slice —
// produces the identical unique ordering on lists of any origin.
func sortCandidates(cands []Candidate) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

func less(a, b Candidate) bool {
	if a.DistToLCA != b.DistToLCA {
		return a.DistToLCA < b.DistToLCA
	}
	return a.Channel < b.Channel
}

// candidates returns the precompiled row for (arrival, at, lca). The slice
// aliases the shared arena: callers must treat it as immutable.
func (t *Tables) candidates(arrival ArrivalClass, at, lcaSwitch topology.NodeID) []topology.ChannelID {
	ref := t.rows[(classIndex(arrival)*t.numSwitches+int(at))*t.numSwitches+int(lcaSwitch)]
	return t.arena[ref.off : ref.off+ref.n : ref.off+ref.n]
}

// MemoryFootprint reports the compiled table sizes: the number of index
// cells, the arena length in channel IDs, and the number of channel IDs a
// non-deduplicated arena would hold. Exposed for diagnostics and tests.
func (t *Tables) MemoryFootprint() (indexCells, arenaLen, naiveArenaLen int) {
	for _, r := range t.rows {
		naiveArenaLen += int(r.n)
	}
	return len(t.rows), len(t.arena), naiveArenaLen
}

// EqualContent reports whether two tables answer every (class, at, lca)
// query with the identical candidate list — the bit-identical hot-swap
// criterion the fault property tests pin (arena layout may differ; contents
// may not).
func (t *Tables) EqualContent(o *Tables) bool {
	if t.numSwitches != o.numSwitches {
		return false
	}
	for i, ra := range t.rows {
		rb := o.rows[i]
		if ra.n != rb.n {
			return false
		}
		for k := uint32(0); k < ra.n; k++ {
			if t.arena[ra.off+k] != o.arena[rb.off+k] {
				return false
			}
		}
	}
	return true
}
