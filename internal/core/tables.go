package core

import (
	"repro/internal/topology"
	"repro/internal/updown"
)

// Tables is the compiled, table-driven form of the SPAM routing and selection
// functions — the software analogue of the routing tables the paper's
// hardware router would hold. Where the reference implementation filters,
// allocates and sorts a fresh candidate list on every header arrival, Tables
// answers the same query with a short chain of index loads and a slice of a
// shared arena: candidates(class, at, lca) is the exact slice Reference-
// CandidateOutputs would produce (same channels, same (DistToLCA, ChannelID)
// order).
//
// Memory model. Earlier revisions indexed rows through a dense
// numClasses × switches × switches array of 8-byte (offset, length)
// references — O(3·S²), which at 64k switches is ~100 GB of index before a
// single candidate is stored. The index is now compressed by structural
// sharing at three levels, mirroring how decision diagrams collapse
// redundant tabular functions:
//
//	colID[class*S + at] ── column ──▶ colPages[col .. col+S/64)
//	                        page  ──▶ pages[pg .. pg+64)   (64 rowIDs)
//	                        rowID ──▶ rowRefs[id] = (off, n) into arena
//
// Every level is deduplicated by FNV hash with content verification: rows
// with identical candidate lists share one rowID (and one arena range),
// 64-LCA pages with identical rowID vectors share one page, and switches
// whose whole LCA→row column is identical for a class share one column.
// Regular families collapse dramatically — in a fat-tree most (class, at)
// pairs are LCA-equivalent to a handful of representatives — while a worst-
// case irregular network degrades gracefully to one column per (class, at),
// still far below the dense index because pages and rows keep sharing.
// A lookup is four dependent loads (column base, page base, rowID, arena
// ref); the offsets are stored directly so no multiply is needed.
//
// Compilation streams, rather than tests, the legality relations: for each
// switch the live channels are split by class once, and then each block of
// 64 LCAs reads one 64-bit word of the (extended-)descendant transpose per
// channel endpoint plus the endpoint's row of the distance matrix. Each
// LCA's packed legality/distance vector is hashed into a per-switch
// signature memo, so LCA-equivalent columns pay one row construction for the
// whole equivalence class — the fast path that makes regular families
// compile in near-linear time.
//
// Reconfiguration. Recompile rebuilds the whole structure for a *new*
// labeling of the same network into the retained pools and dedup scratch —
// zero allocations once every pool has grown to its high-water mark. This is
// the hot half of live fault reconfiguration: relabel the masked topology,
// recompile in place, and the router serves the new tables from the next
// event on.
type Tables struct {
	numSwitches int
	// policy records which extras planes are compiled. PolicyBaseline
	// tables hold exactly the numClasses legality planes; policy tables
	// append a deroute plane triple and an adaptive plane triple (see
	// recompilePolicy), sharing rows, pages and the arena with the
	// baseline planes through the same dedup pools.
	policy Policy
	// colID maps (plane*numSwitches + at) to the start offset of the
	// column's page vector inside colPages. Planes 0..2 are the baseline
	// legality classes; policy tables add planes 3..5 (deroute extras per
	// arrival class) and 6..8 (adaptive extras per arrival class).
	colID []uint32
	// colPages is the flat pool of page vectors: ppc consecutive entries
	// per distinct column, each the start offset of a page inside pages.
	colPages []uint32
	// pages is the flat pool of 64-entry pages of rowIDs (tail pages are
	// padded with rowID 0, the empty row; the pad entries are never read).
	pages []uint32
	// rowRefs maps rowID to the row's arena range. rowID 0 is the empty
	// row and survives every Recompile.
	rowRefs []tableRow
	// arena backs every row; rows with identical contents share a range.
	arena []topology.ChannelID
	// switchOuts caches the inter-switch output channels per switch —
	// static for the lifetime of the network (failed links are masked by
	// the labeling, not removed from the hardware).
	switchOuts [][]topology.ChannelID
	// rowSeen / pageSeen / colSeen dedup the three index levels across
	// recompiles: FNV-1a hash of the content to its first pool reference.
	// A (vanishingly unlikely) hash collision is detected by content
	// comparison and merely stores the content twice — correctness never
	// depends on hash uniqueness. Keying by uint64 keeps Recompile
	// allocation-free.
	rowSeen  map[uint64]uint32
	pageSeen map[uint64]uint32
	colSeen  map[uint64]uint32
	// naiveArena counts the channel IDs a non-deduplicated arena would
	// hold, accumulated during compilation so MemoryFootprint needs no
	// O(S²) walk.
	naiveArena int

	// ---- compile scratch, retained across Recompiles ----

	// row is the per-cell candidate scratch.
	row []Candidate
	// live is the per-switch compile scratch: the current labeling's live
	// channels of the switch split by class (indexed by the class-0/1/2
	// scheme below), with endpoints cached.
	live [numClasses][]liveChan
	// sigSeen memoizes LCA equivalence per switch: hash of an LCA's packed
	// legality/distance vector to an index into triples. Cleared per
	// switch (the live channel set changes).
	sigSeen map[uint64]int32
	// triples holds the memoized per-LCA results; packArena holds their
	// packed vectors for collision-safe verification. Both reset per
	// switch.
	triples   []rowTriple
	packArena []uint64
	// packBuf stages one 64-LCA block of packed vectors, LCA-major.
	packBuf []uint64
	// colBuf accumulates the per-class rowID columns of the current
	// switch, padded to a whole number of pages (pad entries stay 0).
	colBuf [numClasses][]uint32
	// colScratch stages one column's page-offset vector for interning.
	colScratch []uint32

	// ---- policy-pass scratch (nil for PolicyBaseline) ----

	// polSeen / polTriples / polPack mirror sigSeen / triples / packArena
	// for the policy pass: per-switch memoization of LCA-equivalent extras
	// vectors, collision-verified against the stored packed form.
	polSeen    map[uint64]int32
	polTriples []polTriple
	polPack    []uint64
	// polCol accumulates the per-plane rowID columns of the current switch
	// for the six policy planes (deroute 0..2, adaptive 0..2).
	polCol [2 * numClasses][]uint32
}

// liveChan caches a live (non-failed) inter-switch channel with its
// endpoint for the compile inner loop.
type liveChan struct {
	c   topology.ChannelID
	end topology.NodeID
}

// tableRow is one (offset, length) reference into the shared arena.
type tableRow struct {
	off uint32
	n   uint32
}

// rowTriple is the memoized compile result for one LCA-equivalence class at
// a switch: the three class rowIDs, their lengths (for naive-size
// accounting), and the packed vector's offset in packArena.
type rowTriple struct {
	id      [numClasses]uint32
	n       [numClasses]uint32
	packOff uint32
}

// polTriple is the policy-pass analogue of rowTriple: the six policy-plane
// rowIDs (deroute classes 0..2, then adaptive classes 0..2) of one
// LCA-equivalence class, with lengths and the packed vector's offset in
// polPack.
type polTriple struct {
	id      [2 * numClasses]uint32
	n       [2 * numClasses]uint32
	packOff uint32
}

// numClasses counts the distinct arrival behaviours. ArriveInjection is
// legality-equivalent to ArriveUp (the first hop of every route behaves like
// an up arrival), so the two share the class-0 rows.
const numClasses = 3

// pageBits sizes the rowID pages at 64 LCAs — one word of the legality
// bitsets, so the compile block loop and the page granularity coincide.
const (
	pageBits = 6
	pageSize = 1 << pageBits
)

// FNV-1a parameters, shared by all three dedup levels.
const (
	fnvBasis = uint64(1469598103934665603)
	fnvPrime = uint64(1099511628211)
)

// classIndex collapses the four arrival classes onto the three distinct
// legality behaviours.
func classIndex(a ArrivalClass) int {
	switch a {
	case ArriveInjection, ArriveUp:
		return 0
	case ArriveDownCross:
		return 1
	default: // ArriveDownTree
		return 2
	}
}

// pagesPerCol returns the number of 64-LCA pages in one column.
func (t *Tables) pagesPerCol() int {
	return (t.numSwitches + pageSize - 1) / pageSize
}

// planes returns the number of compiled index planes: the numClasses
// baseline legality planes, plus the deroute and adaptive plane triples for
// policy tables.
func (t *Tables) planes() int {
	if t.policy == PolicyBaseline {
		return numClasses
	}
	return 3 * numClasses
}

// Policy reports which routing-policy planes the tables carry.
func (t *Tables) Policy() Policy { return t.policy }

// compileTables builds the full candidate table for a labeling by evaluating
// the routing legality relations once per LCA-equivalence class per switch.
// Non-baseline policies append the deroute and adaptive extras planes in a
// second pass over the finished baseline planes (the extras' viability test
// reads completed baseline rows).
func compileTables(lab *updown.Labeling, pol Policy) *Tables {
	net := lab.Net
	s := net.NumSwitches
	ppc := (s + pageSize - 1) / pageSize
	t := &Tables{
		numSwitches: s,
		policy:      pol,
		rowRefs:     make([]tableRow, 1, 64), // rowRefs[0] = empty row
		switchOuts:  make([][]topology.ChannelID, s),
		rowSeen:     make(map[uint64]uint32),
		pageSeen:    make(map[uint64]uint32),
		colSeen:     make(map[uint64]uint32),
		sigSeen:     make(map[uint64]int32),
		row:         make([]Candidate, 0, 16),
		colScratch:  make([]uint32, ppc),
	}
	t.colID = make([]uint32, t.planes()*s)
	for k := range t.colBuf {
		t.colBuf[k] = make([]uint32, ppc*pageSize)
	}
	if pol != PolicyBaseline {
		t.polSeen = make(map[uint64]int32)
		for k := range t.polCol {
			t.polCol[k] = make([]uint32, ppc*pageSize)
		}
	}
	// Per-switch inter-switch output channels (consumption channels are
	// distribution-only and never candidates), collected once.
	for at := 0; at < s; at++ {
		for _, c := range net.Out(topology.NodeID(at)) {
			if net.IsSwitch(net.Chan(c).Dst) {
				t.switchOuts[at] = append(t.switchOuts[at], c)
			}
		}
	}
	t.Recompile(lab)
	return t
}

// Recompile rebuilds every row for a (new) labeling of the same network,
// reusing the compressed index pools, the arena and the dedup scratch. Every
// row is produced in the paper's selection order — ascending distance from
// the channel endpoint to the LCA, channel ID as the tiebreak — so lookups
// need no per-event sort. After every pool has reached its high-water mark
// the call performs no heap allocation.
//
// The compile loop is shaped for the live-reconfiguration hot path (a fault
// event pays one Recompile): the switch's live channels are split by class
// once per switch; legality is read word-at-a-time from the labeling's
// descendant transposes (64 LCAs per load) with the distance matrix walked
// sequentially; and each LCA's packed legality/distance vector is hashed
// into a per-switch memo so LCA-equivalent cells pay one row construction
// per equivalence class instead of one per LCA.
func (t *Tables) Recompile(lab *updown.Labeling) {
	s := t.numSwitches
	ppc := t.pagesPerCol()
	t.arena = t.arena[:0]
	t.pages = t.pages[:0]
	t.colPages = t.colPages[:0]
	t.rowRefs = t.rowRefs[:1]
	t.naiveArena = 0
	clear(t.rowSeen)
	clear(t.pageSeen)
	clear(t.colSeen)
	var sigHash [pageSize]uint64
	for at := 0; at < s; at++ {
		// Split the switch's live inter-switch channels by class. The
		// class-0 row of a cell is up ∪ legal(down-cross) ∪ legal(down-
		// tree), class 1 drops the ups, class 2 keeps only down-tree; the
		// final sort by (dist, channel) makes append order irrelevant.
		for k := range t.live {
			t.live[k] = t.live[k][:0]
		}
		for _, c := range t.switchOuts[at] {
			if lab.IsDown(c) {
				continue
			}
			end := lab.Net.Chan(c).Dst
			var k int
			switch lab.ClassOf[c] {
			case updown.Up:
				k = 0
			case updown.DownCross:
				k = 1
			default:
				k = 2
			}
			t.live[k] = append(t.live[k], liveChan{c: c, end: end})
		}
		nLive := len(t.live[0]) + len(t.live[1]) + len(t.live[2])
		if need := pageSize * nLive; cap(t.packBuf) < need {
			t.packBuf = make([]uint64, need)
		} else {
			t.packBuf = t.packBuf[:need]
		}
		clear(t.sigSeen)
		t.triples = t.triples[:0]
		t.packArena = t.packArena[:0]
		for base := 0; base < s; base += pageSize {
			lim := s - base
			if lim > pageSize {
				lim = pageSize
			}
			wb := base >> pageBits
			for j := 0; j < lim; j++ {
				sigHash[j] = fnvBasis
			}
			// Stream each live endpoint across the whole block: the
			// packed value fuses the legality bit with the (symmetric)
			// endpoint→LCA distance, biased so "illegal" (0) is distinct
			// from every legal value. Ups are always legal; down-cross
			// legality is one word of the extended-descendant transpose,
			// down-tree one word of the descendant transpose.
			ei := 0
			for _, lc := range t.live[0] {
				dr := lab.SwitchDist[lc.end][base : base+lim]
				for j := 0; j < lim; j++ {
					p := (uint64(uint32(dr[j]))+1)<<1 | 1
					t.packBuf[j*nLive+ei] = p
					sigHash[j] = (sigHash[j] ^ p) * fnvPrime
				}
				ei++
			}
			for _, lc := range t.live[1] {
				w := lab.ExtendedDescendants(lc.end).Word(wb)
				dr := lab.SwitchDist[lc.end][base : base+lim]
				for j := 0; j < lim; j++ {
					var p uint64
					if w>>uint(j)&1 != 0 {
						p = (uint64(uint32(dr[j]))+1)<<1 | 1
					}
					t.packBuf[j*nLive+ei] = p
					sigHash[j] = (sigHash[j] ^ p) * fnvPrime
				}
				ei++
			}
			for _, lc := range t.live[2] {
				w := lab.Descendants(lc.end).Word(wb)
				dr := lab.SwitchDist[lc.end][base : base+lim]
				for j := 0; j < lim; j++ {
					var p uint64
					if w>>uint(j)&1 != 0 {
						p = (uint64(uint32(dr[j]))+1)<<1 | 1
					}
					t.packBuf[j*nLive+ei] = p
					sigHash[j] = (sigHash[j] ^ p) * fnvPrime
				}
				ei++
			}
			for j := 0; j < lim; j++ {
				tri := t.resolveTriple(sigHash[j], t.packBuf[j*nLive:(j+1)*nLive])
				lca := base + j
				for k := 0; k < numClasses; k++ {
					t.colBuf[k][lca] = tri.id[k]
					t.naiveArena += int(tri.n[k])
				}
			}
		}
		// Intern the three finished columns: pages first, then the
		// page-offset vector. Two switches with identical columns for a
		// class end up sharing one colPages range.
		for k := 0; k < numClasses; k++ {
			for p := 0; p < ppc; p++ {
				t.colScratch[p] = t.internPage(t.colBuf[k][p*pageSize : (p+1)*pageSize])
			}
			t.colID[k*s+at] = t.internCol(t.colScratch)
		}
	}
	if t.policy != PolicyBaseline {
		t.recompilePolicy(lab)
	}
}

// recompilePolicy fills the six policy planes (deroute classes 0..2 at plane
// offset numClasses, adaptive classes 0..2 at 2*numClasses) for a finished
// baseline compile. An extras cell holds the channels that fail the
// up*/down* legality test for (arrival, LCA) but whose use provably
// preserves the deadlock certificate — which within the paper's rules is
// exactly one class (see Router.referenceExtras for the argument): down-
// cross channels offered to *down-tree* arrivals, endpoint an extended
// ancestor of the LCA. Classes 0 and 1 are therefore empty planes (their
// columns intern to the all-empty-row page), and the class-2 planes read
// one word of the extended-descendant transpose per down-cross endpoint —
// the same streaming shape as the baseline pass.
//
// The adaptive planes hold the same rows as the deroute planes (the row
// interner dedups them, so the extra planes cost only column pointers). A
// distance-productivity filter was considered and rejected: under a BFS
// up*/down* labeling a productive extra is *provably unreachable* — any
// switch a worm can legally occupy with a down-tree arrival is a tree
// ancestor of its LCA, whose tree descent is already a shortest path, and
// the BFS discovery order forces every strictly-shorter sidestep's subtree
// to capture the LCA's parent pointer first (see ARCHITECTURE.md). Duato
// hops terminate without the filter because every extra is a down-cross
// channel, and down channels strictly ascend the labeling's (level, id)
// order.
func (t *Tables) recompilePolicy(lab *updown.Labeling) {
	s := t.numSwitches
	ppc := t.pagesPerCol()
	var sigHash [pageSize]uint64
	for at := 0; at < s; at++ {
		// Only live down-cross channels can be extras; reuse slot 1 of
		// the class-split scratch.
		for k := range t.live {
			t.live[k] = t.live[k][:0]
		}
		for _, c := range t.switchOuts[at] {
			if lab.IsDown(c) || lab.ClassOf[c] != updown.DownCross {
				continue
			}
			t.live[1] = append(t.live[1], liveChan{c: c, end: lab.Net.Chan(c).Dst})
		}
		nLive := len(t.live[1])
		if need := pageSize * nLive; cap(t.packBuf) < need {
			t.packBuf = make([]uint64, need)
		} else {
			t.packBuf = t.packBuf[:need]
		}
		clear(t.polSeen)
		t.polTriples = t.polTriples[:0]
		t.polPack = t.polPack[:0]
		for base := 0; base < s; base += pageSize {
			lim := s - base
			if lim > pageSize {
				lim = pageSize
			}
			wb := base >> pageBits
			for j := 0; j < lim; j++ {
				sigHash[j] = fnvBasis
			}
			// Pack per (LCA, channel): bit 0 = deroute extra (a cross
			// usable by a down-tree arrival), bit 1 = adaptive extra
			// (the same viability test — see recompilePolicy's doc for
			// why the adaptive plane is not distance-filtered), upper
			// bits the biased endpoint→LCA distance for row
			// construction.
			for ei, lc := range t.live[1] {
				w := lab.ExtendedDescendants(lc.end).Word(wb)
				dr := lab.SwitchDist[lc.end][base : base+lim]
				for j := 0; j < lim; j++ {
					var p uint64
					if w>>uint(j)&1 != 0 {
						p = (uint64(uint32(dr[j]))+1)<<2 | 3
					}
					t.packBuf[j*nLive+ei] = p
					sigHash[j] = (sigHash[j] ^ p) * fnvPrime
				}
			}
			for j := 0; j < lim; j++ {
				tri := t.resolvePolTriple(sigHash[j], t.packBuf[j*nLive:(j+1)*nLive])
				lca := base + j
				for k := 0; k < 2*numClasses; k++ {
					t.polCol[k][lca] = tri.id[k]
					t.naiveArena += int(tri.n[k])
				}
			}
		}
		for k := 0; k < 2*numClasses; k++ {
			for p := 0; p < ppc; p++ {
				t.colScratch[p] = t.internPage(t.polCol[k][p*pageSize : (p+1)*pageSize])
			}
			t.colID[(numClasses+k)*s+at] = t.internCol(t.colScratch)
		}
	}
}

// resolvePolTriple is the policy-pass twin of resolveTriple: memoized row
// construction per LCA-equivalence class, collision-verified against the
// stored packed vector.
func (t *Tables) resolvePolTriple(h uint64, pk []uint64) polTriple {
	if idx, ok := t.polSeen[h]; ok {
		tri := t.polTriples[idx]
		stored := t.polPack[tri.packOff : int(tri.packOff)+len(pk)]
		match := true
		for i, v := range pk {
			if stored[i] != v {
				match = false
				break
			}
		}
		if match {
			return tri
		}
	}
	tri := t.buildPolTriple(pk)
	tri.packOff = uint32(len(t.polPack))
	t.polPack = append(t.polPack, pk...)
	t.polSeen[h] = int32(len(t.polTriples))
	t.polTriples = append(t.polTriples, tri)
	return tri
}

// buildPolTriple constructs and interns the six policy rows of one
// LCA-equivalence class from its packed extras vector. Only down-tree
// arrivals (class 2) have extras; the class-0/1 planes stay the empty row.
func (t *Tables) buildPolTriple(pk []uint64) polTriple {
	var tri polTriple
	for pass := 0; pass < 2; pass++ {
		bit := uint64(1) << uint(pass) // bit 0: deroute, bit 1: adaptive
		row := t.row[:0]
		for i, lc := range t.live[1] {
			if p := pk[i]; p&bit != 0 {
				row = append(row, Candidate{Channel: lc.c, DistToLCA: int32(uint32(p>>2) - 1)})
			}
		}
		t.row = row
		k := pass * numClasses
		tri.id[k+2] = t.internRow(row)
		tri.n[k+2] = uint32(len(row))
	}
	return tri
}

// deroute returns the precompiled deroute-extras row for (arrival, at, lca).
// The slice aliases the shared arena: callers must treat it as immutable.
func (t *Tables) deroute(arrival ArrivalClass, at, lcaSwitch topology.NodeID) []topology.ChannelID {
	ref := t.rowAt(numClasses+classIndex(arrival), int(at), int(lcaSwitch))
	return t.arena[ref.off : ref.off+ref.n : ref.off+ref.n]
}

// adaptive returns the precompiled adaptive-extras row for (arrival, at,
// lca). The slice aliases the shared arena: callers must treat it as
// immutable.
func (t *Tables) adaptive(arrival ArrivalClass, at, lcaSwitch topology.NodeID) []topology.ChannelID {
	ref := t.rowAt(2*numClasses+classIndex(arrival), int(at), int(lcaSwitch))
	return t.arena[ref.off : ref.off+ref.n : ref.off+ref.n]
}

// resolveTriple returns the memoized row triple for an LCA whose packed
// legality/distance vector is pk (hash h), building and recording it on a
// memo miss. Hash hits are verified against the stored packed vector, so a
// collision only costs a rebuild, never a wrong row.
func (t *Tables) resolveTriple(h uint64, pk []uint64) rowTriple {
	if idx, ok := t.sigSeen[h]; ok {
		tri := t.triples[idx]
		stored := t.packArena[tri.packOff : int(tri.packOff)+len(pk)]
		match := true
		for i, v := range pk {
			if stored[i] != v {
				match = false
				break
			}
		}
		if match {
			return tri
		}
	}
	tri := t.buildTriple(pk)
	tri.packOff = uint32(len(t.packArena))
	t.packArena = append(t.packArena, pk...)
	t.sigSeen[h] = int32(len(t.triples))
	t.triples = append(t.triples, tri)
	return tri
}

// buildTriple constructs and interns the three class rows of one LCA-
// equivalence class from its packed vector. The packed values replay the
// legality tests and distance reads, so no labeling state is touched here.
func (t *Tables) buildTriple(pk []uint64) rowTriple {
	row := t.row[:0]
	off1 := len(t.live[0])
	off2 := off1 + len(t.live[1])
	for i, lc := range t.live[1] {
		if p := pk[off1+i]; p != 0 {
			row = append(row, Candidate{Channel: lc.c, DistToLCA: int32(uint32(p>>1) - 1)})
		}
	}
	downCross := len(row)
	for i, lc := range t.live[2] {
		if p := pk[off2+i]; p != 0 {
			row = append(row, Candidate{Channel: lc.c, DistToLCA: int32(uint32(p>>1) - 1)})
		}
	}
	downAny := len(row)
	var tri rowTriple
	// Class 2 (down-tree arrival): down-tree candidates only.
	t.row = row
	tri.id[2] = t.internRow(row[downCross:downAny])
	tri.n[2] = uint32(downAny - downCross)
	// Class 1 (down-cross arrival): down-cross ∪ down-tree.
	tri.id[1] = t.internRow(row[:downAny])
	tri.n[1] = uint32(downAny)
	// Class 0 (up/injection arrival): everything plus the ups.
	for i, lc := range t.live[0] {
		p := pk[i]
		row = append(row, Candidate{Channel: lc.c, DistToLCA: int32(uint32(p>>1) - 1)})
	}
	t.row = row
	tri.id[0] = t.internRow(row)
	tri.n[0] = uint32(len(row))
	return tri
}

// internRow sorts a candidate row into selection order and returns its
// (deduplicated) rowID. The row slice is scratch owned by the caller;
// interning copies the channels out.
func (t *Tables) internRow(row []Candidate) uint32 {
	if len(row) == 0 {
		return 0
	}
	sortCandidates(row)
	h := fnvBasis
	for _, cand := range row {
		h ^= uint64(uint32(cand.Channel))
		h *= fnvPrime
	}
	if id, ok := t.rowSeen[h]; ok && t.rowEqual(t.rowRefs[id], row) {
		return id
	}
	// New row, or hash collision (store separately).
	id := uint32(len(t.rowRefs))
	t.rowRefs = append(t.rowRefs, tableRow{off: uint32(len(t.arena)), n: uint32(len(row))})
	for _, cand := range row {
		t.arena = append(t.arena, cand.Channel)
	}
	t.rowSeen[h] = id
	return id
}

// internPage returns the pages-pool offset of a 64-entry rowID page,
// deduplicated by content.
func (t *Tables) internPage(pg []uint32) uint32 {
	h := fnvBasis
	for _, v := range pg {
		h = (h ^ uint64(v)) * fnvPrime
	}
	if off, ok := t.pageSeen[h]; ok && u32Equal(t.pages[off:int(off)+pageSize], pg) {
		return off
	}
	off := uint32(len(t.pages))
	t.pages = append(t.pages, pg...)
	t.pageSeen[h] = off
	return off
}

// internCol returns the colPages-pool offset of a column's page-offset
// vector, deduplicated by content.
func (t *Tables) internCol(col []uint32) uint32 {
	h := fnvBasis
	for _, v := range col {
		h = (h ^ uint64(v)) * fnvPrime
	}
	if off, ok := t.colSeen[h]; ok && u32Equal(t.colPages[off:int(off)+len(col)], col) {
		return off
	}
	off := uint32(len(t.colPages))
	t.colPages = append(t.colPages, col...)
	t.colSeen[h] = off
	return off
}

func u32Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// rowEqual reports whether the arena range ref holds exactly the channels of
// row, in order.
func (t *Tables) rowEqual(ref tableRow, row []Candidate) bool {
	if int(ref.n) != len(row) {
		return false
	}
	for i, cand := range row {
		if t.arena[int(ref.off)+i] != cand.Channel {
			return false
		}
	}
	return true
}

// sortCandidates orders candidates by the paper's selection priority:
// ascending (DistToLCA, ChannelID). The key is a total order (channel IDs
// are unique), so the insertion sort — allocation-free, unlike sort.Slice —
// produces the identical unique ordering on lists of any origin.
func sortCandidates(cands []Candidate) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

func less(a, b Candidate) bool {
	if a.DistToLCA != b.DistToLCA {
		return a.DistToLCA < b.DistToLCA
	}
	return a.Channel < b.Channel
}

// rowAt resolves the compressed index for one (class, at, lca) cell: column
// base, page base, rowID, arena reference — four dependent loads.
func (t *Tables) rowAt(cls, at, lca int) tableRow {
	col := t.colID[cls*t.numSwitches+at]
	pb := t.colPages[int(col)+lca>>pageBits]
	return t.rowRefs[t.pages[int(pb)+lca&(pageSize-1)]]
}

// candidates returns the precompiled row for (arrival, at, lca). The slice
// aliases the shared arena: callers must treat it as immutable.
func (t *Tables) candidates(arrival ArrivalClass, at, lcaSwitch topology.NodeID) []topology.ChannelID {
	ref := t.rowAt(classIndex(arrival), int(at), int(lcaSwitch))
	return t.arena[ref.off : ref.off+ref.n : ref.off+ref.n]
}

// MemoryFootprint reports the compiled table sizes: the number of logical
// index cells, the arena length in channel IDs, and the number of channel
// IDs a non-deduplicated arena would hold. Exposed for diagnostics and
// tests; MemStats gives the full byte-level accounting.
func (t *Tables) MemoryFootprint() (indexCells, arenaLen, naiveArenaLen int) {
	return t.planes() * t.numSwitches * t.numSwitches, len(t.arena), t.naiveArena
}

// MemStats is the byte-level accounting of one compiled table set, exposed
// through the facade, /healthz and campaign reports. NaiveIndexBytes is what
// the pre-compression dense (offset, length) index would occupy;
// CompressionX is the ratio of the naive structure (dense index + per-cell
// arena) to the compressed one.
type MemStats struct {
	Switches        int     `json:"switches"`
	Cells           int     `json:"cells"`
	DistinctRows    int     `json:"distinct_rows"`
	DistinctPages   int     `json:"distinct_pages"`
	DistinctColumns int     `json:"distinct_columns"`
	ArenaChannels   int     `json:"arena_channels"`
	NaiveChannels   int     `json:"naive_channels"`
	IndexBytes      int64   `json:"index_bytes"`
	ArenaBytes      int64   `json:"arena_bytes"`
	TableBytes      int64   `json:"table_bytes"`
	NaiveIndexBytes int64   `json:"naive_index_bytes"`
	CompressionX    float64 `json:"compression_x"`
}

// MemStats reports the compressed table memory accounting.
func (t *Tables) MemStats() MemStats {
	s := t.numSwitches
	m := MemStats{
		Switches:        s,
		Cells:           t.planes() * s * s,
		DistinctRows:    len(t.rowRefs),
		DistinctPages:   len(t.pages) / pageSize,
		DistinctColumns: len(t.colPages) / t.pagesPerCol(),
		ArenaChannels:   len(t.arena),
		NaiveChannels:   t.naiveArena,
	}
	m.IndexBytes = 4*int64(len(t.colID)+len(t.colPages)+len(t.pages)) + 8*int64(len(t.rowRefs))
	m.ArenaBytes = 4 * int64(len(t.arena))
	m.TableBytes = m.IndexBytes + m.ArenaBytes
	m.NaiveIndexBytes = 8 * int64(m.Cells)
	naive := m.NaiveIndexBytes + 4*int64(t.naiveArena)
	if m.TableBytes > 0 {
		m.CompressionX = float64(naive) / float64(m.TableBytes)
	}
	return m
}

// EqualContent reports whether two tables answer every (plane, at, lca)
// query with the identical candidate list — the bit-identical hot-swap
// criterion the fault property tests pin (pool layout may differ; contents
// may not). Policy tables compare their extras planes too, so two tables
// with different policies are never content-equal.
func (t *Tables) EqualContent(o *Tables) bool {
	if t.numSwitches != o.numSwitches || t.policy != o.policy {
		return false
	}
	s := t.numSwitches
	for cls := 0; cls < t.planes(); cls++ {
		for at := 0; at < s; at++ {
			for lca := 0; lca < s; lca++ {
				ra := t.rowAt(cls, at, lca)
				rb := o.rowAt(cls, at, lca)
				if ra.n != rb.n {
					return false
				}
				for k := uint32(0); k < ra.n; k++ {
					if t.arena[ra.off+k] != o.arena[rb.off+k] {
						return false
					}
				}
			}
		}
	}
	return true
}
