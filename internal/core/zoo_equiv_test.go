package core

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/topology"
	"repro/internal/updown"
)

// zooSpecs spans every topology-zoo family the spec grammar knows, at sizes
// small enough for exhaustive cell-by-cell sweeps.
var zooSpecs = []string{
	"lattice:32",
	"gnm:24+12",
	"mesh:5x4",
	"torus:5x5",
	"hypercube:4",
	"fattree:2x3",
}

// denseTables is the uncompressed middle term of the three-way equivalence:
// every (class, at, lca) row materialized separately from the reference
// routing function, with no arena, page, or column sharing — the structure
// the compressed index must reproduce cell by cell.
type denseTables struct {
	s    int
	rows [][]topology.ChannelID // [cls*s*s + at*s + lca]
}

func denseFromReference(ref *Router) *denseTables {
	s := ref.Net.NumSwitches
	classes := []ArrivalClass{ArriveUp, ArriveDownCross, ArriveDownTree}
	d := &denseTables{s: s, rows: make([][]topology.ChannelID, len(classes)*s*s)}
	for cls, arrival := range classes {
		for at := 0; at < s; at++ {
			for lca := 0; lca < s; lca++ {
				cands := ref.ReferenceCandidateOutputs(topology.NodeID(at), arrival, topology.NodeID(lca))
				row := make([]topology.ChannelID, len(cands))
				for i, c := range cands {
					row[i] = c.Channel
				}
				d.rows[(cls*s+at)*s+lca] = row
			}
		}
	}
	return d
}

func (d *denseTables) row(cls, at, lca int) []topology.ChannelID {
	return d.rows[(cls*d.s+at)*d.s+lca]
}

// checkThreeWay asserts compressed ≡ dense ≡ reference on every cell of
// every arrival class (injection shares the up rows, so it is checked
// against the class-0 dense rows).
func checkThreeWay(t *testing.T, label string, table, ref *Router, dense *denseTables) {
	t.Helper()
	s := ref.Net.NumSwitches
	arrivals := []struct {
		a   ArrivalClass
		cls int
	}{
		{ArriveInjection, 0}, {ArriveUp, 0}, {ArriveDownCross, 1}, {ArriveDownTree, 2},
	}
	for at := 0; at < s; at++ {
		for _, ac := range arrivals {
			for lca := 0; lca < s; lca++ {
				atN, lcaN := topology.NodeID(at), topology.NodeID(lca)
				got := table.CandidateChannels(atN, ac.a, lcaN)
				mid := dense.row(ac.cls, at, lca)
				want := ref.ReferenceCandidateOutputs(atN, ac.a, lcaN)
				if len(got) != len(mid) || len(got) != len(want) {
					t.Fatalf("%s (%d,%v,%d): compressed %d / dense %d / reference %d candidates",
						label, at, ac.a, lca, len(got), len(mid), len(want))
				}
				for i := range want {
					if got[i] != mid[i] || got[i] != want[i].Channel {
						t.Fatalf("%s (%d,%v,%d)[%d]: compressed %d, dense %d, reference %d",
							label, at, ac.a, lca, i, got[i], mid[i], want[i].Channel)
					}
				}
			}
		}
	}
}

// maskableLink finds a switch-switch channel pair whose failure keeps the
// switch graph connected under the labeling's root, by trial relabel on a
// scratch labeling.
func maskableLink(lab *updown.Labeling) (*bitset.Set, bool) {
	net := lab.Net
	probe, err := updown.NewWithRoot(net, lab.Root)
	if err != nil {
		return nil, false
	}
	mask := bitset.New(len(net.Channels))
	for ci, ch := range net.Channels {
		if topology.ChannelID(ci) > ch.Reverse || net.IsProcessor(ch.Src) || net.IsProcessor(ch.Dst) {
			continue
		}
		mask.Reset()
		mask.Set(ci)
		mask.Set(int(ch.Reverse))
		if probe.Relabel(mask) == nil {
			return mask, true
		}
	}
	return nil, false
}

// TestZooThreeWayTableEquivalence is the satellite property pin for the
// compressed index: on every zoo family × every root strategy, the
// compressed tables, an uncompressed dense materialization, and the
// reference routing function agree on every (switch, arrival class, LCA)
// cell — and they stay in agreement after a fault-masked Relabel+Recompile
// and after the swap back to the unmasked labeling (the live-reconfiguration
// round trip).
func TestZooThreeWayTableEquivalence(t *testing.T) {
	strategies := []updown.RootStrategy{updown.RootMinID, updown.RootMaxDegree, updown.RootCenter}
	for _, spec := range zooSpecs {
		sp, err := topology.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		net, err := sp.Build(1998)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, strat := range strategies {
			label := fmt.Sprintf("%s/%v", spec, strat)
			t.Run(label, func(t *testing.T) {
				lab, err := updown.New(net, strat)
				if err != nil {
					t.Fatal(err)
				}
				table := NewRouter(lab)
				ref := NewReferenceRouter(lab)
				checkThreeWay(t, label, table, ref, denseFromReference(ref))

				mask, ok := maskableLink(lab)
				if !ok {
					t.Skipf("%s: no maskable link (tree network)", label)
				}
				if err := lab.Relabel(mask); err != nil {
					t.Fatal(err)
				}
				table.Recompile(lab)
				checkThreeWay(t, label+"/masked", table, ref, denseFromReference(ref))

				if err := lab.Relabel(nil); err != nil {
					t.Fatal(err)
				}
				table.Recompile(lab)
				checkThreeWay(t, label+"/restored", table, ref, denseFromReference(ref))
			})
		}
	}
}
