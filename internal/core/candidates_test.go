package core

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/updown"
)

// Exact candidate-set tables on the Figure-1 network (root 0). Channel
// classes there: tree edges 0-1, 0-2, 2-3, 3-4, 3-5 (down away from 0,
// up toward 0); cross edge 1-2 (1->2 down-cross, 2->1 up). These tables
// enumerate the full legal output set in priority order for hand-picked
// router states; they pin rules 1-3 and the selection function exactly.
func TestCandidateSetsExact(t *testing.T) {
	r := fig1Router(t)
	net := r.Net
	ch := func(src, dst topology.NodeID) topology.ChannelID {
		c := net.ChannelBetween(src, dst)
		if c == topology.None {
			t.Fatalf("no channel %d->%d", src, dst)
		}
		return c
	}
	cases := []struct {
		name    string
		at      topology.NodeID
		arrival ArrivalClass
		lca     topology.NodeID
		want    []topology.ChannelID // in selection-priority order
	}{
		{
			// Paper's example: header from proc 5 (our 6) at switch 1,
			// LCA 3. Legal: up 1->0 (dist(0,3)=2), down-cross 1->2
			// (endpoint 2 is ext-ancestor of 3; dist(2,3)=1). The cross
			// channel wins on distance.
			name: "switch1-injectionArrival-toLCA3",
			at:   1, arrival: ArriveUp, lca: 3,
			want: []topology.ChannelID{ch(1, 2), ch(1, 0)},
		},
		{
			// At switch 2 after the cross hop: up channels now illegal;
			// only the down-cross 2->3... wait: 2->3 is a TREE edge
			// (parent(3)=2), so it is a down-tree channel with endpoint
			// 3 = LCA, allowed by rule 3.
			name: "switch2-crossArrival-toLCA3",
			at:   2, arrival: ArriveDownCross, lca: 3,
			want: []topology.ChannelID{ch(2, 3)},
		},
		{
			// Same router, up arrival: rule 1 additionally allows BOTH
			// up channels — 2->0 (tree up) and 2->1 (same-level cross,
			// larger ID to smaller, hence classified up). Both have
			// dist(endpoint, 3) = 2; the channel-ID tiebreak puts 2->0
			// (created for edge {0,2}) first. The tree channel to the
			// LCA still wins overall on distance 0.
			name: "switch2-upArrival-toLCA3",
			at:   2, arrival: ArriveUp, lca: 3,
			want: []topology.ChannelID{ch(2, 3), ch(2, 0), ch(2, 1)},
		},
		{
			// Routing toward LCA 0 (the root) from switch 3: only up
			// channels make progress; both 3->2 (dist 1) and... 3's
			// switch neighbors are 2 (up), 4, 5 (down tree). Down-tree
			// endpoints 4, 5 are not ancestors of 0, so exactly one
			// candidate.
			name: "switch3-upArrival-toRoot",
			at:   3, arrival: ArriveUp, lca: 0,
			want: []topology.ChannelID{ch(3, 2)},
		},
		{
			// Tree-arrival restriction: at switch 3 heading to LCA 4
			// (our switch 4 = paper node 6) after a down-tree hop, only
			// the down-tree channel 3->4 is legal.
			name: "switch3-treeArrival-toLCA4",
			at:   3, arrival: ArriveDownTree, lca: 4,
			want: []topology.ChannelID{ch(3, 4)},
		},
		{
			// At the root toward LCA 3: down-tree 0->2 (endpoint 2 is
			// an ancestor of 3, dist 1) and up?? The root has no up
			// channels (both its tree channels point down, and 0's
			// channels to 1 and 2 are down-tree). Down-tree 0->1 is
			// illegal (1 not an ancestor of 3).
			name: "root-upArrival-toLCA3",
			at:   0, arrival: ArriveUp, lca: 3,
			want: []topology.ChannelID{ch(0, 2)},
		},
	}
	for _, c := range cases {
		got := r.CandidateOutputs(c.at, c.arrival, c.lca)
		if len(got) != len(c.want) {
			t.Errorf("%s: %d candidates want %d (%v)", c.name, len(got), len(c.want), got)
			continue
		}
		for i := range got {
			if got[i].Channel != c.want[i] {
				t.Errorf("%s: candidate %d = channel %d want %d", c.name, i, got[i].Channel, c.want[i])
			}
		}
	}
}

// TestCandidateDistancesExact pins the selection keys themselves.
func TestCandidateDistancesExact(t *testing.T) {
	r := fig1Router(t)
	got := r.CandidateOutputs(1, ArriveUp, 3)
	if len(got) != 2 {
		t.Fatalf("%v", got)
	}
	if got[0].DistToLCA != 1 || got[1].DistToLCA != 2 {
		t.Fatalf("distances %d, %d want 1, 2", got[0].DistToLCA, got[1].DistToLCA)
	}
}

// TestNoCandidatesAtLCA documents the contract: the caller must switch to
// distribution at the LCA instead of asking for unicast candidates; the
// routing function still answers (with channels leaving the LCA's subtree
// legality) but the simulator never asks.
func TestArrivalClassesAtFig1AreConsistent(t *testing.T) {
	r := fig1Router(t)
	lab := r.Lab
	// Channel 2->1 must be Up (same level, larger ID to smaller).
	c21 := r.Net.ChannelBetween(2, 1)
	if lab.ClassOf[c21] != updown.Up {
		t.Fatalf("2->1 class %v", lab.ClassOf[c21])
	}
	// Channel 1->2 must be DownCross.
	c12 := r.Net.ChannelBetween(1, 2)
	if lab.ClassOf[c12] != updown.DownCross {
		t.Fatalf("1->2 class %v", lab.ClassOf[c12])
	}
}
