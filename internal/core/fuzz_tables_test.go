package core

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/updown"
)

// FuzzRouteTableVsReference fuzzes the compiled routing tables against the
// reference implementation: on arbitrary random topologies (lattice or
// unconstrained G(n,m)) the precompiled candidate rows must match
// ReferenceCandidateOutputs cell by cell — same channels, same selection
// order — and the bitset-driven distribution fast path must replay the
// reference ancestor walk for the fuzzed destination set. Run with
// `go test -fuzz=FuzzRouteTableVsReference ./internal/core` to explore; the
// seed corpus runs as part of `go test`.
func FuzzRouteTableVsReference(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(0), false, uint16(0), uint64(0b1011))
	f.Add(uint64(42), uint8(30), uint8(1), true, uint16(7), uint64(0xffff))
	f.Add(uint64(7), uint8(3), uint8(2), false, uint16(999), uint64(1))
	f.Add(uint64(0), uint8(0), uint8(255), true, uint16(65535), uint64(^uint64(0)))

	f.Fuzz(func(t *testing.T, seed uint64, sizeSel, rootSel uint8, irregular bool, srcSel uint16, destBits uint64) {
		n := 2 + int(sizeSel%24)
		var net *topology.Network
		var err error
		if irregular {
			net, err = topology.RandomIrregular(topology.GNMConfig{
				Switches:   n,
				ExtraLinks: n / 2,
				Seed:       seed,
			})
		} else {
			net, err = topology.RandomLattice(topology.DefaultLattice(n, seed))
		}
		if err != nil {
			t.Fatal(err)
		}
		lab, err := updown.New(net, updown.RootStrategy(rootSel%3))
		if err != nil {
			t.Fatal(err)
		}
		table := NewRouter(lab)
		ref := NewReferenceRouter(lab)

		// Every (switch, arrival class, LCA) cell of the compiled tables
		// must reproduce the reference routing function.
		arrivals := []ArrivalClass{ArriveInjection, ArriveUp, ArriveDownCross, ArriveDownTree}
		for at := 0; at < net.NumSwitches; at++ {
			for _, arrival := range arrivals {
				for lca := 0; lca < net.NumSwitches; lca++ {
					atN, lcaN := topology.NodeID(at), topology.NodeID(lca)
					want := ref.ReferenceCandidateOutputs(atN, arrival, lcaN)
					got := table.CandidateOutputs(atN, arrival, lcaN)
					if len(got) != len(want) {
						t.Fatalf("(%d,%v,%d): %d candidates, want %d", at, arrival, lca, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("(%d,%v,%d)[%d]: table %+v, reference %+v", at, arrival, lca, i, got[i], want[i])
						}
					}
				}
			}
		}

		// Distribution fast path on the fuzzed (src, dests) pair.
		src := topology.NodeID(net.NumSwitches + int(srcSel)%net.NumProcs)
		var dests []topology.NodeID
		for i := 0; i < net.NumProcs && i < 64; i++ {
			if destBits&(1<<uint(i)) != 0 {
				if d := topology.NodeID(net.NumSwitches + i); d != src {
					dests = append(dests, d)
				}
			}
		}
		if len(dests) == 0 {
			return
		}
		if tl, rl := table.LCASwitch(dests), ref.LCASwitch(dests); tl != rl {
			t.Fatalf("LCA: table %d, reference %d", tl, rl)
		}
		ds, err := table.DestSet(dests)
		if err != nil {
			t.Fatal(err)
		}
		for at := 0; at < net.NumSwitches; at++ {
			atN := topology.NodeID(at)
			want := ref.ReferenceDistributionOutputs(atN, ds)
			got := table.DistributionOutputs(atN, ds)
			if len(got) != len(want) {
				t.Fatalf("distribution at %d: %v, want %v", at, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("distribution at %d: %v, want %v", at, got, want)
				}
			}
		}
	})
}
