// Package core implements the paper's primary contribution: the SPAM
// (Single Phase Adaptive Multicast) routing algorithm.
//
// SPAM routes a worm in two phases:
//
//  1. To the LCA. The header travels from the source processor to the least
//     common ancestor (LCA) of the destination set in the up*/down* spanning
//     tree, using one or more up channels, then zero or more down-cross
//     channels, then zero or more down-tree channels — strictly in that
//     order. A down-cross channel is permitted only if its endpoint is an
//     *extended ancestor* of the LCA; a down-tree channel only if its
//     endpoint is an *ancestor* of the LCA.
//
//  2. Distribution. From the LCA, routing is restricted to down-tree
//     channels. The worm splits into a multi-head worm along the Steiner
//     subtree spanning the destinations; at each switch, the set of
//     required output channels is the set of child tree channels whose
//     subtree contains at least one destination, plus the consumption
//     channel when a local processor is a destination.
//
// Unicast is the special case |D| = 1: the LCA of a single processor is the
// processor itself, so phase 1 routes to its switch and phase 2 degenerates
// to the consumption channel.
//
// The routing function is partially adaptive in phase 1; the paper's
// selection function prioritizes candidate channels by the hop distance from
// the channel's endpoint to the LCA, which CandidateOutputs implements.
package core
