package core

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/updown"
)

// equivTopologies yields the random topology sweep the table/reference
// equivalence properties run over: a mix of lattice and unconstrained G(n,m)
// irregular networks across sizes and root strategies, ≥50 in total.
func equivTopologies(t *testing.T) []*updown.Labeling {
	t.Helper()
	var labs []*updown.Labeling
	strategies := []updown.RootStrategy{updown.RootMinID, updown.RootMaxDegree, updown.RootCenter}
	add := func(net *topology.Network, err error, seed uint64) {
		t.Helper()
		if err != nil {
			t.Fatalf("topology: %v", err)
		}
		lab, err := updown.New(net, strategies[seed%3])
		if err != nil {
			t.Fatalf("labeling: %v", err)
		}
		labs = append(labs, lab)
	}
	for seed := uint64(0); seed < 30; seed++ {
		n := 6 + int(seed%5)*6 // 6..30 switches
		net, err := topology.RandomLattice(topology.DefaultLattice(n, seed*7919+13))
		add(net, err, seed)
	}
	for seed := uint64(0); seed < 30; seed++ {
		n := 5 + int(seed%6)*5 // 5..30 switches
		net, err := topology.RandomIrregular(topology.GNMConfig{
			Switches:   n,
			ExtraLinks: n / 2,
			Seed:       seed*104729 + 7,
		})
		add(net, err, seed)
	}
	return labs
}

// TestTablesMatchReference cross-checks the compiled candidate tables
// against the reference routing function on every (switch, arrival class,
// LCA) cell of ≥50 random topologies: same channels, same selection order.
func TestTablesMatchReference(t *testing.T) {
	labs := equivTopologies(t)
	if len(labs) < 50 {
		t.Fatalf("only %d topologies, want >= 50", len(labs))
	}
	arrivals := []ArrivalClass{ArriveInjection, ArriveUp, ArriveDownCross, ArriveDownTree}
	for li, lab := range labs {
		table := NewRouter(lab)
		ref := NewReferenceRouter(lab)
		if !table.TableDriven() || ref.TableDriven() {
			t.Fatalf("router mode flags wrong: table=%v ref=%v", table.TableDriven(), ref.TableDriven())
		}
		s := lab.Net.NumSwitches
		for at := 0; at < s; at++ {
			for _, arrival := range arrivals {
				for lca := 0; lca < s; lca++ {
					atN, lcaN := topology.NodeID(at), topology.NodeID(lca)
					want := ref.ReferenceCandidateOutputs(atN, arrival, lcaN)
					got := table.CandidateOutputs(atN, arrival, lcaN)
					if len(got) != len(want) {
						t.Fatalf("topology %d: (%d,%v,%d): %d candidates, want %d",
							li, at, arrival, lca, len(got), len(want))
					}
					row := table.CandidateChannels(atN, arrival, lcaN)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("topology %d: (%d,%v,%d)[%d]: table %+v, reference %+v",
								li, at, arrival, lca, i, got[i], want[i])
						}
						if row[i] != want[i].Channel {
							t.Fatalf("topology %d: (%d,%v,%d)[%d]: channel row %d, reference %d",
								li, at, arrival, lca, i, row[i], want[i].Channel)
						}
					}
				}
			}
		}
	}
}

// randomDestSet picks 1..min(8, procs) distinct processors.
func randomDestSet(r *rng.Source, net *topology.Network) []topology.NodeID {
	k := 1 + r.Intn(8)
	if k > net.NumProcs {
		k = net.NumProcs
	}
	perm := r.Perm(net.NumProcs)
	dests := make([]topology.NodeID, k)
	for i := 0; i < k; i++ {
		dests[i] = topology.NodeID(net.NumSwitches + perm[i])
	}
	return dests
}

// TestDistributionOutputsMatchReference cross-checks the descendant-bitset
// distribution fast path against the reference per-destination ancestor walk
// at every switch for random destination sets, on the same ≥50 topologies.
func TestDistributionOutputsMatchReference(t *testing.T) {
	labs := equivTopologies(t)
	r := rng.New(42)
	for li, lab := range labs {
		table := NewRouter(lab)
		ref := NewReferenceRouter(lab)
		for trial := 0; trial < 5; trial++ {
			dests := randomDestSet(r, lab.Net)
			ds, err := table.DestSet(dests)
			if err != nil {
				t.Fatal(err)
			}
			for at := 0; at < lab.Net.NumSwitches; at++ {
				atN := topology.NodeID(at)
				want := ref.ReferenceDistributionOutputs(atN, ds)
				got := table.DistributionOutputs(atN, ds)
				if len(got) != len(want) {
					t.Fatalf("topology %d switch %d: %v, want %v", li, at, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("topology %d switch %d: %v, want %v", li, at, got, want)
					}
				}
				buf := make([]topology.ChannelID, 0, len(want))
				if app := table.AppendDistributionOutputs(buf, atN, ds); len(app) != len(want) {
					t.Fatalf("topology %d switch %d: append variant %v, want %v", li, at, app, want)
				}
			}
		}
	}
}

// TestTreeReachMatchesRecursiveReference checks the iterative bitset-driven
// TreeReach against a recursive walk over the reference distribution
// function.
func TestTreeReachMatchesRecursiveReference(t *testing.T) {
	labs := equivTopologies(t)
	r := rng.New(7)
	for li, lab := range labs {
		table := NewRouter(lab)
		ref := NewReferenceRouter(lab)
		for trial := 0; trial < 5; trial++ {
			dests := randomDestSet(r, lab.Net)
			got, err := table.TreeReach(dests)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := ref.DestSet(dests)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			var walk func(sw topology.NodeID)
			walk = func(sw topology.NodeID) {
				for _, c := range ref.ReferenceDistributionOutputs(sw, ds) {
					want++
					dst := ref.Net.Chan(c).Dst
					if ref.Net.IsSwitch(dst) {
						walk(dst)
					}
				}
			}
			walk(ref.LCASwitch(dests))
			if got != want {
				t.Fatalf("topology %d: TreeReach = %d, recursive reference = %d", li, got, want)
			}
		}
	}
}

// TestTableLookupsAllocationFree pins the hot-path lookups at zero
// allocations.
func TestTableLookupsAllocationFree(t *testing.T) {
	net, err := topology.RandomLattice(topology.DefaultLattice(64, 11))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootMinID)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(lab)
	ds := bitset.New(net.N())
	for p := net.NumSwitches; p < net.N(); p += 3 {
		ds.Set(p)
	}
	buf := make([]topology.ChannelID, 0, 16)
	var sink int
	if n := testing.AllocsPerRun(100, func() {
		for at := 0; at < net.NumSwitches; at++ {
			sink += len(r.CandidateChannels(topology.NodeID(at), ArriveUp, 0))
			buf = r.AppendDistributionOutputs(buf[:0], topology.NodeID(at), ds)
			sink += len(buf)
		}
	}); n != 0 {
		t.Fatalf("table lookups allocated %v allocs/run, want 0", n)
	}
	_ = sink
}

// TestTableDedupSharesRows sanity-checks the arena sharing: the deduplicated
// arena must be substantially smaller than materializing every row.
func TestTableDedupSharesRows(t *testing.T) {
	net, err := topology.RandomLattice(topology.DefaultLattice(64, 3))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootMinID)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(lab)
	cells, arena, naive := r.Tables().MemoryFootprint()
	if cells != 3*64*64 {
		t.Fatalf("index cells = %d, want %d", cells, 3*64*64)
	}
	if arena >= naive/2 {
		t.Fatalf("dedup arena %d ≥ half of naive %d: sharing not effective", arena, naive)
	}
}
