package core

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/updown"
)

// LatencyParams are the timing constants of the paper's experiments.
type LatencyParams struct {
	// StartupNs is the communication startup latency (paper: 10 µs).
	StartupNs int64
	// RouterSetupNs is the per-router setup latency for each message
	// header (paper: 40 ns).
	RouterSetupNs int64
	// ChanPropNs is the channel propagation latency per flit per channel
	// (paper: 10 ns).
	ChanPropNs int64
	// MessageFlits is the worm length in flits (paper: 128).
	MessageFlits int
}

// PaperParams returns the latency parameters used in the paper's Section 4.
func PaperParams() LatencyParams {
	return LatencyParams{
		StartupNs:     10000,
		RouterSetupNs: 40,
		ChanPropNs:    10,
		MessageFlits:  128,
	}
}

// Validate checks the parameters are usable.
func (p LatencyParams) Validate() error {
	if p.StartupNs < 0 || p.RouterSetupNs < 0 {
		return fmt.Errorf("core: negative latency parameter: %+v", p)
	}
	if p.ChanPropNs <= 0 {
		return fmt.Errorf("core: channel propagation must be positive, got %d", p.ChanPropNs)
	}
	if p.MessageFlits < 2 {
		return fmt.Errorf("core: message needs at least header+tail flits, got %d", p.MessageFlits)
	}
	return nil
}

// Phase1Path computes the deterministic contention-free path of a header
// from source processor src to the LCA switch, applying the selection
// function greedily (first candidate at every hop, which is what a simulator
// picks when every channel is free). The returned slice starts with the
// injection channel. If src's switch already is the LCA the path is just the
// injection channel.
func (r *Router) Phase1Path(src, lcaSwitch topology.NodeID) ([]topology.ChannelID, error) {
	if !r.Net.IsProcessor(src) {
		return nil, fmt.Errorf("core: source %d is not a processor", src)
	}
	if !r.Net.IsSwitch(lcaSwitch) {
		return nil, fmt.Errorf("core: LCA %d is not a switch", lcaSwitch)
	}
	inj := r.Net.ChannelBetween(src, r.Net.SwitchOf(src))
	if inj == topology.None {
		return nil, fmt.Errorf("core: processor %d has no injection channel", src)
	}
	path := []topology.ChannelID{inj}
	at := r.Net.SwitchOf(src)
	arrival := ArriveInjection
	guard := 0
	for at != lcaSwitch {
		cands := r.CandidateOutputs(at, arrival, lcaSwitch)
		if len(cands) == 0 {
			return nil, fmt.Errorf("core: no legal output at switch %d toward LCA %d (arrival %v)", at, lcaSwitch, arrival)
		}
		c := cands[0].Channel
		path = append(path, c)
		at = r.Net.Chan(c).Dst
		arrival = ArrivalOf(r.Lab.ClassOf[c])
		if guard++; guard > 4*r.Net.N() {
			return nil, fmt.Errorf("core: phase-1 path from %d to %d does not terminate", src, lcaSwitch)
		}
	}
	return path, nil
}

// MulticastPaths returns, for every destination, the full contention-free
// channel path a SPAM worm follows from src: the greedy phase-1 path to the
// LCA followed by the unique tree path from the LCA to the destination
// (ending in the consumption channel).
func (r *Router) MulticastPaths(src topology.NodeID, dests []topology.NodeID) (map[topology.NodeID][]topology.ChannelID, error) {
	if _, err := r.DestSet(dests); err != nil {
		return nil, err
	}
	lca := r.LCASwitch(dests)
	p1, err := r.Phase1Path(src, lca)
	if err != nil {
		return nil, err
	}
	out := make(map[topology.NodeID][]topology.ChannelID, len(dests))
	for _, d := range dests {
		// Tree path LCA -> d via parent chain from d.
		var rev []topology.ChannelID
		for v := d; v != lca; v = r.Lab.Parent[v] {
			rev = append(rev, r.Lab.ParentChan[v])
		}
		path := append([]topology.ChannelID(nil), p1...)
		for i := len(rev) - 1; i >= 0; i-- {
			path = append(path, rev[i])
		}
		out[d] = path
	}
	return out, nil
}

// ZeroLoadLatency computes the closed-form latency of a single multicast in
// an otherwise idle network:
//
//	startup + max over destinations of (setup·switches(path) + prop·channels(path)) + (flits−1)·prop
//
// where switches(path) counts the routers the header visits. Under zero load
// every branch advances at channel rate, no bubbles are needed, and the last
// tail arrival is governed by the deepest branch. The simulator must match
// this exactly for single messages; integration tests assert that.
func (r *Router) ZeroLoadLatency(p LatencyParams, src topology.NodeID, dests []topology.NodeID) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	paths, err := r.MulticastPaths(src, dests)
	if err != nil {
		return 0, err
	}
	var worst int64
	for _, path := range paths {
		hops := int64(len(path))
		switches := hops - 1 // every channel but the last enters a switch
		lat := p.RouterSetupNs*switches + p.ChanPropNs*hops
		if lat > worst {
			worst = lat
		}
	}
	return p.StartupNs + worst + int64(p.MessageFlits-1)*p.ChanPropNs, nil
}

// CheckLegalUnicastPath verifies that a channel sequence obeys SPAM's
// ordering constraint — one or more up channels, then zero or more
// down-cross channels, then zero or more down-tree channels — and the
// per-rule endpoint conditions with respect to the LCA switch, and that the
// path is actually connected from src to the LCA. Used by property tests
// and cmd/deadlockcheck.
func (r *Router) CheckLegalUnicastPath(src topology.NodeID, lcaSwitch topology.NodeID, path []topology.ChannelID) error {
	if len(path) == 0 {
		return fmt.Errorf("core: empty path")
	}
	at := src
	const (
		phaseUp = iota
		phaseCross
		phaseTree
	)
	phase := phaseUp
	for i, c := range path {
		ch := r.Net.Chan(c)
		if ch.Src != at {
			return fmt.Errorf("core: hop %d: channel %d starts at %d, expected %d", i, c, ch.Src, at)
		}
		switch r.Lab.ClassOf[c] {
		case updown.Up:
			if phase != phaseUp {
				return fmt.Errorf("core: hop %d: up channel after descending", i)
			}
		case updown.DownCross:
			if phase == phaseTree {
				return fmt.Errorf("core: hop %d: down-cross channel after down-tree", i)
			}
			if !r.Lab.IsExtendedAncestor(ch.Dst, lcaSwitch) {
				return fmt.Errorf("core: hop %d: down-cross endpoint %d not an extended ancestor of %d", i, ch.Dst, lcaSwitch)
			}
			phase = phaseCross
		case updown.DownTree:
			if !r.Lab.IsAncestor(ch.Dst, lcaSwitch) {
				return fmt.Errorf("core: hop %d: down-tree endpoint %d not an ancestor of %d", i, ch.Dst, lcaSwitch)
			}
			phase = phaseTree
		}
		at = ch.Dst
	}
	if at != lcaSwitch {
		return fmt.Errorf("core: path ends at %d, not LCA %d", at, lcaSwitch)
	}
	return nil
}
