package core

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/updown"
)

// LatencyParams are the timing constants of the paper's experiments.
type LatencyParams struct {
	// StartupNs is the communication startup latency (paper: 10 µs).
	StartupNs int64
	// RouterSetupNs is the per-router setup latency for each message
	// header (paper: 40 ns).
	RouterSetupNs int64
	// ChanPropNs is the channel propagation latency per flit per channel
	// (paper: 10 ns).
	ChanPropNs int64
	// MessageFlits is the worm length in flits (paper: 128).
	MessageFlits int
}

// PaperParams returns the latency parameters used in the paper's Section 4.
func PaperParams() LatencyParams {
	return LatencyParams{
		StartupNs:     10000,
		RouterSetupNs: 40,
		ChanPropNs:    10,
		MessageFlits:  128,
	}
}

// Validate checks the parameters are usable.
func (p LatencyParams) Validate() error {
	if p.StartupNs < 0 || p.RouterSetupNs < 0 {
		return fmt.Errorf("core: negative latency parameter: %+v", p)
	}
	if p.ChanPropNs <= 0 {
		return fmt.Errorf("core: channel propagation must be positive, got %d", p.ChanPropNs)
	}
	if p.MessageFlits < 2 {
		return fmt.Errorf("core: message needs at least header+tail flits, got %d", p.MessageFlits)
	}
	return nil
}

// Phase1Path computes the deterministic contention-free path of a header
// from source processor src to the LCA switch, applying the selection
// function greedily (first candidate at every hop, which is what a simulator
// picks when every channel is free). The returned slice starts with the
// injection channel. If src's switch already is the LCA the path is just the
// injection channel.
func (r *Router) Phase1Path(src, lcaSwitch topology.NodeID) ([]topology.ChannelID, error) {
	return r.appendPhase1Path(nil, src, lcaSwitch)
}

// appendPhase1Path appends the greedy phase-1 path to dst and returns the
// extended slice (allocation-free given capacity).
func (r *Router) appendPhase1Path(dst []topology.ChannelID, src, lcaSwitch topology.NodeID) ([]topology.ChannelID, error) {
	if !r.Net.IsProcessor(src) {
		return nil, fmt.Errorf("core: source %d is not a processor", src)
	}
	if !r.Net.IsSwitch(lcaSwitch) {
		return nil, fmt.Errorf("core: LCA %d is not a switch", lcaSwitch)
	}
	inj := r.Net.ChannelBetween(src, r.Net.SwitchOf(src))
	if inj == topology.None {
		return nil, fmt.Errorf("core: processor %d has no injection channel", src)
	}
	dst = append(dst, inj)
	at := r.Net.SwitchOf(src)
	arrival := ArriveInjection
	guard := 0
	for at != lcaSwitch {
		cands := r.CandidateChannels(at, arrival, lcaSwitch)
		if len(cands) == 0 {
			return nil, fmt.Errorf("core: no legal output at switch %d toward LCA %d (arrival %v)", at, lcaSwitch, arrival)
		}
		c := cands[0]
		dst = append(dst, c)
		at = r.Net.Chan(c).Dst
		arrival = ArrivalOf(r.Lab.ClassOf[c])
		if guard++; guard > 4*r.Net.N() {
			return nil, fmt.Errorf("core: phase-1 path from %d to %d does not terminate", src, lcaSwitch)
		}
	}
	return dst, nil
}

// PathBuf is reusable storage for MulticastPathsInto. The zero value is
// ready to use; reusing one buffer across calls retires the per-call map and
// per-destination slice allocations of MulticastPaths once warm.
type PathBuf struct {
	paths map[topology.NodeID][]topology.ChannelID
	pool  [][]topology.ChannelID // spare per-destination slices, len 0
	p1    []topology.ChannelID
	rev   []topology.ChannelID
}

// reset clears the map, recycling the value slices into the pool.
func (b *PathBuf) reset() {
	if b.paths == nil {
		b.paths = make(map[topology.NodeID][]topology.ChannelID)
		return
	}
	for d, p := range b.paths {
		b.pool = append(b.pool, p[:0])
		delete(b.paths, d)
	}
}

// next returns an empty path slice, reusing pooled capacity when available.
func (b *PathBuf) next() []topology.ChannelID {
	if n := len(b.pool); n > 0 {
		p := b.pool[n-1]
		b.pool = b.pool[:n-1]
		return p
	}
	return nil
}

// MulticastPaths returns, for every destination, the full contention-free
// channel path a SPAM worm follows from src: the greedy phase-1 path to the
// LCA followed by the unique tree path from the LCA to the destination
// (ending in the consumption channel).
func (r *Router) MulticastPaths(src topology.NodeID, dests []topology.NodeID) (map[topology.NodeID][]topology.ChannelID, error) {
	return r.MulticastPathsInto(new(PathBuf), src, dests)
}

// MulticastPathsInto is MulticastPaths writing into caller-provided storage:
// the returned map and its value slices are owned by buf and are valid until
// the next call with the same buf. Callers that evaluate many multicasts
// (baselines, analytics sweeps) reuse one PathBuf to keep the per-call cost
// at the path computation itself.
func (r *Router) MulticastPathsInto(buf *PathBuf, src topology.NodeID, dests []topology.NodeID) (map[topology.NodeID][]topology.ChannelID, error) {
	if _, err := r.DestSet(dests); err != nil {
		return nil, err
	}
	lca := r.LCASwitch(dests)
	p1, err := r.appendPhase1Path(buf.p1[:0], src, lca)
	if err != nil {
		return nil, err
	}
	buf.p1 = p1
	buf.reset()
	for _, d := range dests {
		// Tree path LCA -> d via parent chain from d.
		rev := buf.rev[:0]
		for v := d; v != lca; v = r.Lab.Parent[v] {
			rev = append(rev, r.Lab.ParentChan[v])
		}
		buf.rev = rev
		path := append(buf.next(), p1...)
		for i := len(rev) - 1; i >= 0; i-- {
			path = append(path, rev[i])
		}
		buf.paths[d] = path
	}
	return buf.paths, nil
}

// ZeroLoadLatency computes the closed-form latency of a single multicast in
// an otherwise idle network:
//
//	startup + max over destinations of (setup·switches(path) + prop·channels(path)) + (flits−1)·prop
//
// where switches(path) counts the routers the header visits. Under zero load
// every branch advances at channel rate, no bubbles are needed, and the last
// tail arrival is governed by the deepest branch. The simulator must match
// this exactly for single messages; integration tests assert that.
func (r *Router) ZeroLoadLatency(p LatencyParams, src topology.NodeID, dests []topology.NodeID) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	paths, err := r.MulticastPaths(src, dests)
	if err != nil {
		return 0, err
	}
	var worst int64
	for _, path := range paths {
		hops := int64(len(path))
		switches := hops - 1 // every channel but the last enters a switch
		lat := p.RouterSetupNs*switches + p.ChanPropNs*hops
		if lat > worst {
			worst = lat
		}
	}
	return p.StartupNs + worst + int64(p.MessageFlits-1)*p.ChanPropNs, nil
}

// CheckLegalUnicastPath verifies that a channel sequence obeys SPAM's
// ordering constraint — one or more up channels, then zero or more
// down-cross channels, then zero or more down-tree channels — and the
// per-rule endpoint conditions with respect to the LCA switch, and that the
// path is actually connected from src to the LCA. Used by property tests
// and cmd/deadlockcheck.
func (r *Router) CheckLegalUnicastPath(src topology.NodeID, lcaSwitch topology.NodeID, path []topology.ChannelID) error {
	if len(path) == 0 {
		return fmt.Errorf("core: empty path")
	}
	at := src
	const (
		phaseUp = iota
		phaseCross
		phaseTree
	)
	phase := phaseUp
	for i, c := range path {
		ch := r.Net.Chan(c)
		if ch.Src != at {
			return fmt.Errorf("core: hop %d: channel %d starts at %d, expected %d", i, c, ch.Src, at)
		}
		switch r.Lab.ClassOf[c] {
		case updown.Up:
			if phase != phaseUp {
				return fmt.Errorf("core: hop %d: up channel after descending", i)
			}
		case updown.DownCross:
			if phase == phaseTree {
				return fmt.Errorf("core: hop %d: down-cross channel after down-tree", i)
			}
			if !r.Lab.IsExtendedAncestor(ch.Dst, lcaSwitch) {
				return fmt.Errorf("core: hop %d: down-cross endpoint %d not an extended ancestor of %d", i, ch.Dst, lcaSwitch)
			}
			phase = phaseCross
		case updown.DownTree:
			if !r.Lab.IsAncestor(ch.Dst, lcaSwitch) {
				return fmt.Errorf("core: hop %d: down-tree endpoint %d not an ancestor of %d", i, ch.Dst, lcaSwitch)
			}
			phase = phaseTree
		}
		at = ch.Dst
	}
	if at != lcaSwitch {
		return fmt.Errorf("core: path ends at %d, not LCA %d", at, lcaSwitch)
	}
	return nil
}
