package core

import "fmt"

// Policy selects the routing-policy family a Router implements on top of the
// paper's up*/down* legality rules.
//
// PolicyBaseline is the paper's router: the compiled candidate tables hold
// exactly the legal up*/down* channels in selection order and the simulator
// waits on the highest-priority one when all are busy.
//
// PolicyMisroute is the bounded-deroute family: in addition to the baseline
// candidates the router exposes *deroute* channels — down-cross channels a
// down-tree arrival may cross out of its subtree on, which the paper's Rule
// 2 arrival clause forbids even though their extended-ancestor endpoint
// still completes the route (the unique deadlock-safe relaxation of the
// up*/down* rules; see Router.DerouteChannels). A worm may take one only
// when it is instantly free, spending one unit of its per-worm misroute
// budget; with the budget exhausted (or zero) the router is bit-identical
// to baseline.
//
// PolicyDuato is the Duato-style fully adaptive family: the adaptive class
// holds every viable deroute channel, usable without budget but again only
// when instantly free; a worm that finds no free adaptive channel falls back
// to — and waits on — the baseline up*/down* escape class, whose
// channel-dependency graph stays acyclic. (An endpoint-strictly-closer
// productivity filter was rejected: it is provably vacuous at every
// dynamically reachable cell under BFS up*/down* labelings — see
// Router.referenceExtras.)
//
// Deadlock-freedom for both families follows from one structural rule: policy
// channels are never waited on. Every blocking wait happens on a baseline
// escape channel, so the wait-for CDG is a subgraph of the baseline CDG, which
// the up*/down* labeling keeps acyclic (deadlock.VerifyPolicy certifies this
// per labeling). Livelock-freedom: misroutes are budget-bounded, and every
// extras hop is a down channel, which strictly ascends the labeling's
// (level, id) order — so any worm's path length is bounded even under
// unbudgeted Duato routing.
type Policy uint8

const (
	// PolicyBaseline is the paper's fixed priority-by-distance selection
	// over up*/down* candidates.
	PolicyBaseline Policy = iota
	// PolicyMisroute allows budget-bounded non-minimal deroutes under
	// congestion.
	PolicyMisroute
	// PolicyDuato allows unlimited budget-free adaptive hops with the
	// baseline class as deadlock-free escape.
	PolicyDuato
)

func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyMisroute:
		return "misroute"
	case PolicyDuato:
		return "duato"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy parses the wire form of a routing policy. The empty string is
// the baseline (the zero value), so omitted request/manifest fields keep
// their pre-policy behaviour.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "baseline":
		return PolicyBaseline, nil
	case "misroute":
		return PolicyMisroute, nil
	case "duato":
		return PolicyDuato, nil
	}
	return PolicyBaseline, fmt.Errorf("core: unknown routing policy %q (want baseline, misroute or duato)", s)
}

// PolicyNames lists the accepted wire names, baseline first.
func PolicyNames() []string { return []string{"baseline", "misroute", "duato"} }
