package core

import (
	"fmt"
	"testing"

	"repro/internal/topology"
	"repro/internal/updown"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyBaseline, true},
		{"baseline", PolicyBaseline, true},
		{"misroute", PolicyMisroute, true},
		{"duato", PolicyDuato, true},
		{"adaptive", PolicyBaseline, false},
		{"Misroute", PolicyBaseline, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, ok=%t", c.in, got, err, c.want, c.ok)
		}
	}
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Errorf("round trip %q: %v, %v", name, p, err)
		}
	}
}

// checkPolicyCells asserts, for every (switch, arrival, LCA) cell, that the
// compiled extras planes match the reference extras functions, that the
// baseline candidate planes are untouched by the policy dimension, and the
// structural extras invariants: no up channels, disjoint from the baseline
// row, every extras hop ascending the labeling's (level, id) order, the
// adaptive row identical to the deroute row (the productivity filter is
// provably vacuous — see Router.referenceExtras), every extras endpoint
// viable.
func checkPolicyCells(t *testing.T, label string, table, base *Router) {
	t.Helper()
	ref := NewReferenceRouterPolicy(table.Lab, table.Policy())
	s := table.Net.NumSwitches
	arrivals := []ArrivalClass{ArriveInjection, ArriveUp, ArriveDownCross, ArriveDownTree}
	for at := 0; at < s; at++ {
		for _, a := range arrivals {
			for lca := 0; lca < s; lca++ {
				atN, lcaN := topology.NodeID(at), topology.NodeID(lca)
				cell := fmt.Sprintf("%s (%d,%v,%d)", label, at, a, lca)

				got := table.CandidateChannels(atN, a, lcaN)
				want := base.CandidateChannels(atN, a, lcaN)
				if !chansEqual(got, want) {
					t.Fatalf("%s: baseline plane drifted under policy: %v vs %v", cell, got, want)
				}

				der := table.DerouteChannels(atN, a, lcaN)
				if wantD := ref.ReferenceDerouteOutputs(atN, a, lcaN); !candsMatch(der, wantD) {
					t.Fatalf("%s: deroute %v, reference %v", cell, der, wantD)
				}
				ada := table.AdaptiveChannels(atN, a, lcaN)
				if wantA := ref.ReferenceAdaptiveOutputs(atN, a, lcaN); !candsMatch(ada, wantA) {
					t.Fatalf("%s: adaptive %v, reference %v", cell, ada, wantA)
				}

				inBase := map[topology.ChannelID]bool{}
				for _, c := range want {
					inBase[c] = true
				}
				for _, c := range der {
					if inBase[c] {
						t.Fatalf("%s: deroute channel %d is already a baseline candidate", cell, c)
					}
					ch := table.Net.Chan(c)
					if table.Lab.ClassOf[c] == updown.Up {
						t.Fatalf("%s: deroute channel %d climbs (up class)", cell, c)
					}
					end := ch.Dst
					la, le := table.Lab.Level[atN], table.Lab.Level[end]
					if la > le || (la == le && atN >= end) {
						t.Fatalf("%s: extras hop %d does not ascend (level, id): (%d,%d) -> (%d,%d)", cell, c, la, atN, le, end)
					}
					if end != lcaN && len(ref.ReferenceCandidateOutputs(end, ArrivalOf(table.Lab.ClassOf[c]), lcaN)) == 0 {
						t.Fatalf("%s: deroute channel %d strands the worm at %d", cell, c, end)
					}
				}
				if !chansEqual(ada, der) {
					t.Fatalf("%s: adaptive row %v differs from deroute row %v", cell, ada, der)
				}
			}
		}
	}
}

func chansEqual(a, b []topology.ChannelID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func candsMatch(got []topology.ChannelID, want []Candidate) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i].Channel {
			return false
		}
	}
	return true
}

// TestAdaptiveDecisionZeroAlloc guards the hot path: once the policy tables
// are compiled, reading a cell's baseline, deroute and adaptive rows — the
// whole per-header adaptive routing decision — performs zero allocations.
// The engine calls these on every blocked header retry, so a single
// allocation here would dominate congested trials.
func TestAdaptiveDecisionZeroAlloc(t *testing.T) {
	sp, err := topology.ParseSpec("gnm:24+12")
	if err != nil {
		t.Fatal(err)
	}
	net, err := sp.Build(1998)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.New(net, updown.RootMinID)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouterPolicy(lab, PolicyDuato)
	// Find a cell with a non-empty extras row so the guard exercises the
	// interesting path, not the empty-row early return.
	var atN, lcaN topology.NodeID
	found := false
	for at := 0; at < net.NumSwitches && !found; at++ {
		for lca := 0; lca < net.NumSwitches && !found; lca++ {
			if len(r.DerouteChannels(topology.NodeID(at), ArriveDownTree, topology.NodeID(lca))) > 0 {
				atN, lcaN = topology.NodeID(at), topology.NodeID(lca)
				found = true
			}
		}
	}
	if !found {
		t.Fatal("gnm:24+12 seed 1998 has no populated extras cell — pick another seed")
	}
	var sink int
	if n := testing.AllocsPerRun(1000, func() {
		sink += len(r.CandidateChannels(atN, ArriveDownTree, lcaN))
		sink += len(r.DerouteChannels(atN, ArriveDownTree, lcaN))
		sink += len(r.AdaptiveChannels(atN, ArriveDownTree, lcaN))
	}); n != 0 {
		t.Fatalf("adaptive routing decision allocates %.1f/op, want 0", n)
	}
	if sink == 0 {
		t.Fatal("rows unexpectedly empty")
	}
}

// TestZooPolicyTableEquivalence pins the compiled policy planes against the
// reference extras functions on every zoo family × root strategy × policy,
// through the fault-masked Relabel/Recompile round trip — the policy twin of
// TestZooThreeWayTableEquivalence.
func TestZooPolicyTableEquivalence(t *testing.T) {
	strategies := []updown.RootStrategy{updown.RootMinID, updown.RootMaxDegree, updown.RootCenter}
	for _, spec := range zooSpecs {
		sp, err := topology.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		net, err := sp.Build(1998)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, strat := range strategies {
			for _, pol := range []Policy{PolicyMisroute, PolicyDuato} {
				label := fmt.Sprintf("%s/%v/%v", spec, strat, pol)
				t.Run(label, func(t *testing.T) {
					lab, err := updown.New(net, strat)
					if err != nil {
						t.Fatal(err)
					}
					table := NewRouterPolicy(lab, pol)
					base := NewRouter(lab)
					checkPolicyCells(t, label, table, base)

					mask, ok := maskableLink(lab)
					if !ok {
						t.Skipf("%s: no maskable link (tree network)", label)
					}
					if err := lab.Relabel(mask); err != nil {
						t.Fatal(err)
					}
					table.Recompile(lab)
					base.Recompile(lab)
					checkPolicyCells(t, label+"/masked", table, base)

					if err := lab.Relabel(nil); err != nil {
						t.Fatal(err)
					}
					table.Recompile(lab)
					base.Recompile(lab)
					checkPolicyCells(t, label+"/restored", table, base)
				})
			}
		}
	}
}
