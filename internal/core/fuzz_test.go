package core

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/updown"
)

// FuzzRoutingInvariants fuzzes the routing layer end to end: arbitrary
// topology seeds, sizes, roots, sources and destination masks must always
// yield a legal, terminating phase-1 route and a distribution tree covering
// exactly the destinations. Run with `go test -fuzz=FuzzRoutingInvariants
// ./internal/core` to explore; the seed corpus runs as part of `go test`.
func FuzzRoutingInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(16), uint8(0), uint16(0), uint64(0b1011))
	f.Add(uint64(42), uint8(40), uint8(1), uint16(7), uint64(0xffff))
	f.Add(uint64(7), uint8(3), uint8(2), uint16(999), uint64(1))
	f.Add(uint64(0), uint8(0), uint8(255), uint16(65535), uint64(^uint64(0)))

	f.Fuzz(func(t *testing.T, seed uint64, sizeSel, rootSel uint8, srcSel uint16, destBits uint64) {
		n := 2 + int(sizeSel%64)
		net, err := topology.RandomLattice(topology.DefaultLattice(n, seed))
		if err != nil {
			t.Fatal(err)
		}
		lab, err := updown.New(net, updown.RootStrategy(rootSel%3))
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.Verify(); err != nil {
			t.Fatal(err)
		}
		r := NewRouter(lab)

		src := topology.NodeID(net.NumSwitches + int(srcSel)%net.NumProcs)
		var dests []topology.NodeID
		for i := 0; i < net.NumProcs && i < 64; i++ {
			if destBits&(1<<uint(i)) != 0 {
				if d := topology.NodeID(net.NumSwitches + i); d != src {
					dests = append(dests, d)
				}
			}
		}
		if len(dests) == 0 {
			return
		}
		lca := r.LCASwitch(dests)
		path, err := r.Phase1Path(src, lca)
		if err != nil {
			t.Fatalf("no phase-1 path: %v", err)
		}
		if err := r.CheckLegalUnicastPath(src, lca, path); err != nil {
			t.Fatalf("illegal path: %v", err)
		}
		ds, err := r.DestSet(dests)
		if err != nil {
			t.Fatal(err)
		}
		reached := map[topology.NodeID]bool{}
		var walk func(sw topology.NodeID)
		walk = func(sw topology.NodeID) {
			for _, c := range r.DistributionOutputs(sw, ds) {
				dst := net.Chan(c).Dst
				if net.IsProcessor(dst) {
					if reached[dst] {
						t.Fatalf("destination %d reached twice", dst)
					}
					reached[dst] = true
				} else {
					walk(dst)
				}
			}
		}
		walk(lca)
		if len(reached) != len(dests) {
			t.Fatalf("distribution reached %d of %d destinations", len(reached), len(dests))
		}
	})
}
