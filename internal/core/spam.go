// Package core implements the paper's primary contribution: the SPAM
// (Single Phase Adaptive Multicast) routing algorithm.
//
// SPAM routes a worm in two phases:
//
//  1. To the LCA. The header travels from the source processor to the least
//     common ancestor (LCA) of the destination set in the up*/down* spanning
//     tree, using one or more up channels, then zero or more down-cross
//     channels, then zero or more down-tree channels — strictly in that
//     order. A down-cross channel is permitted only if its endpoint is an
//     *extended ancestor* of the LCA; a down-tree channel only if its
//     endpoint is an *ancestor* of the LCA.
//
//  2. Distribution. From the LCA, routing is restricted to down-tree
//     channels. The worm splits into a multi-head worm along the Steiner
//     subtree spanning the destinations; at each switch, the set of
//     required output channels is the set of child tree channels whose
//     subtree contains at least one destination, plus the consumption
//     channel when a local processor is a destination.
//
// Unicast is the special case |D| = 1: the LCA of a single processor is the
// processor itself, so phase 1 routes to its switch and phase 2 degenerates
// to the consumption channel.
//
// The routing function is partially adaptive in phase 1; the paper's
// selection function prioritizes candidate channels by the hop distance from
// the channel's endpoint to the LCA, which CandidateOutputs implements.
package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/topology"
	"repro/internal/updown"
)

// ArrivalClass describes how a header arrived at a router, which determines
// the set of legal outgoing channels (the worm's routing phase is fully
// captured by the class of the arrival channel).
type ArrivalClass uint8

const (
	// ArriveInjection marks a header leaving its source processor (the
	// first channel of every route is an up channel, so injection behaves
	// like an up arrival).
	ArriveInjection ArrivalClass = iota
	// ArriveUp marks arrival on an up channel.
	ArriveUp
	// ArriveDownCross marks arrival on a down-cross channel.
	ArriveDownCross
	// ArriveDownTree marks arrival on a down-tree channel.
	ArriveDownTree
)

func (a ArrivalClass) String() string {
	switch a {
	case ArriveInjection:
		return "injection"
	case ArriveUp:
		return "up"
	case ArriveDownCross:
		return "down-cross"
	case ArriveDownTree:
		return "down-tree"
	}
	return fmt.Sprintf("ArrivalClass(%d)", uint8(a))
}

// ArrivalOf maps a channel's up*/down* class to the corresponding arrival
// class.
func ArrivalOf(c updown.Class) ArrivalClass {
	switch c {
	case updown.Up:
		return ArriveUp
	case updown.DownCross:
		return ArriveDownCross
	default:
		return ArriveDownTree
	}
}

// Router evaluates the SPAM routing and selection functions for one labeled
// network. It is immutable after construction and safe for concurrent use.
type Router struct {
	Net *topology.Network
	Lab *updown.Labeling
}

// NewRouter builds a SPAM router over a labeling.
func NewRouter(lab *updown.Labeling) *Router {
	return &Router{Net: lab.Net, Lab: lab}
}

// Candidate is one legal output channel for a header in phase 1, with the
// selection key the paper describes (distance from the channel endpoint to
// the LCA).
type Candidate struct {
	Channel topology.ChannelID
	// DistToLCA is the switch-graph hop distance from the channel's
	// endpoint to the LCA switch.
	DistToLCA int32
}

// CandidateOutputs returns the legal output channels at switch `at` for a
// header that arrived with the given arrival class and is being routed to
// lcaSwitch (phase 1). Candidates are ordered by the paper's selection
// priority: ascending distance from the channel endpoint to the LCA, with
// channel ID as the deterministic tiebreak. The list is never empty while
// at != lcaSwitch (reachability is guaranteed by the up*/down* structure);
// at == lcaSwitch is the caller's signal to switch to distribution.
func (r *Router) CandidateOutputs(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: CandidateOutputs at non-switch %d", at))
	}
	var out []Candidate
	for _, c := range r.Net.Out(at) {
		ch := r.Net.Chan(c)
		if r.Net.IsProcessor(ch.Dst) {
			// Consumption channels are used only in distribution.
			continue
		}
		switch r.Lab.ClassOf[c] {
		case updown.Up:
			// Rule 1: legal only when the header is still in the up
			// sub-network (arrived on an up channel or injection).
			if arrival != ArriveUp && arrival != ArriveInjection {
				continue
			}
		case updown.DownCross:
			// Rule 2: legal from up or down-cross arrivals when the
			// endpoint is an extended ancestor of the destination.
			if arrival == ArriveDownTree {
				continue
			}
			if !r.Lab.IsExtendedAncestor(ch.Dst, lcaSwitch) {
				continue
			}
		case updown.DownTree:
			// Rule 3: legal in all cases when the endpoint is an
			// ancestor of the destination.
			if !r.Lab.IsAncestor(ch.Dst, lcaSwitch) {
				continue
			}
		}
		out = append(out, Candidate{Channel: c, DistToLCA: r.Lab.SwitchDist[ch.Dst][lcaSwitch]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DistToLCA != out[j].DistToLCA {
			return out[i].DistToLCA < out[j].DistToLCA
		}
		return out[i].Channel < out[j].Channel
	})
	return out
}

// DistributionOutputs returns the set of down-tree output channels required
// at switch `at` during the distribution phase for the given destination set
// (a bitset over node IDs): every child tree channel whose subtree contains
// a destination, including consumption channels to locally attached
// destination processors. The result is sorted by channel ID; the request
// for this set must be enqueued atomically by the router model.
func (r *Router) DistributionOutputs(at topology.NodeID, dests *bitset.Set) []topology.ChannelID {
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: DistributionOutputs at non-switch %d", at))
	}
	var out []topology.ChannelID
	for _, c := range r.Lab.ChildChans[at] {
		child := r.Net.Chan(c).Dst
		if r.Net.IsProcessor(child) {
			if dests.Test(int(child)) {
				out = append(out, c)
			}
			continue
		}
		if r.subtreeContains(child, dests) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// subtreeContains reports whether any destination lies in the tree subtree
// rooted at switch `root` (i.e. root is an ancestor of some destination).
func (r *Router) subtreeContains(root topology.NodeID, dests *bitset.Set) bool {
	found := false
	dests.ForEach(func(d int) bool {
		if r.Lab.IsAncestor(root, topology.NodeID(d)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// LCASwitch returns the switch at which distribution begins for the given
// destination processors.
func (r *Router) LCASwitch(dests []topology.NodeID) topology.NodeID {
	return r.Lab.LCASwitch(dests)
}

// DestSet builds the bitset form of a destination list, validating that all
// destinations are distinct processors.
func (r *Router) DestSet(dests []topology.NodeID) (*bitset.Set, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("core: empty destination set")
	}
	s := bitset.New(r.Net.N())
	for _, d := range dests {
		if !r.Net.IsProcessor(d) {
			return nil, fmt.Errorf("core: destination %d is not a processor", d)
		}
		if s.Test(int(d)) {
			return nil, fmt.Errorf("core: duplicate destination %d", d)
		}
		s.Set(int(d))
	}
	return s, nil
}

// TreeReach counts the channels of the distribution subtree for a
// destination set rooted at the LCA: the exact number of down-tree channels
// a SPAM worm will traverse in phase 2. Used by analytics and tests.
func (r *Router) TreeReach(dests []topology.NodeID) (int, error) {
	ds, err := r.DestSet(dests)
	if err != nil {
		return 0, err
	}
	lca := r.LCASwitch(dests)
	count := 0
	var walk func(sw topology.NodeID)
	walk = func(sw topology.NodeID) {
		for _, c := range r.DistributionOutputs(sw, ds) {
			count++
			dst := r.Net.Chan(c).Dst
			if r.Net.IsSwitch(dst) {
				walk(dst)
			}
		}
	}
	walk(lca)
	return count, nil
}
