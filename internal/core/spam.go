package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/topology"
	"repro/internal/updown"
)

// ArrivalClass describes how a header arrived at a router, which determines
// the set of legal outgoing channels (the worm's routing phase is fully
// captured by the class of the arrival channel).
type ArrivalClass uint8

const (
	// ArriveInjection marks a header leaving its source processor (the
	// first channel of every route is an up channel, so injection behaves
	// like an up arrival).
	ArriveInjection ArrivalClass = iota
	// ArriveUp marks arrival on an up channel.
	ArriveUp
	// ArriveDownCross marks arrival on a down-cross channel.
	ArriveDownCross
	// ArriveDownTree marks arrival on a down-tree channel.
	ArriveDownTree
)

func (a ArrivalClass) String() string {
	switch a {
	case ArriveInjection:
		return "injection"
	case ArriveUp:
		return "up"
	case ArriveDownCross:
		return "down-cross"
	case ArriveDownTree:
		return "down-tree"
	}
	return fmt.Sprintf("ArrivalClass(%d)", uint8(a))
}

// ArrivalOf maps a channel's up*/down* class to the corresponding arrival
// class.
func ArrivalOf(c updown.Class) ArrivalClass {
	switch c {
	case updown.Up:
		return ArriveUp
	case updown.DownCross:
		return ArriveDownCross
	default:
		return ArriveDownTree
	}
}

// Router evaluates the SPAM routing and selection functions for one labeled
// network. It is immutable after construction — and then safe for concurrent
// use — unless it is explicitly reconfigured through Recompile, which only
// the single-threaded fault-injection path does on private routers.
//
// By default the routing function is table-driven: NewRouter compiles every
// (switch, arrival class, LCA) decision into the shared candidate tables the
// paper's hardware router would hold (see Tables), so the per-header cost is
// an array lookup. NewReferenceRouter keeps the original compute-per-event
// path, which tests cross-check the tables against and which serves as a
// debugging fallback (spamnet.WithReferenceRouting).
type Router struct {
	Net *topology.Network
	Lab *updown.Labeling
	tab *Tables // nil in reference mode
	pol Policy
}

// Recompile points the router at a (new) labeling of the same network and
// rebuilds the compiled tables in place, reusing their arenas — the
// hot-swap half of live reconfiguration. The swap is atomic with respect to
// a simulator's event loop: callers invoke it between events, and no
// routing query retains slices across events (segment output sets copy the
// chosen channels). In reference mode only the labeling pointer swaps.
//
// After Recompile the router answers every query exactly as a fresh
// NewRouter over the same labeling would (the fault property tests pin
// this bit-identically). NOT safe to call concurrently with queries;
// fault-injecting sessions therefore own private routers.
func (r *Router) Recompile(lab *updown.Labeling) {
	if lab.Net != r.Net {
		panic("core: Recompile with a labeling of a different network")
	}
	r.Lab = lab
	if r.tab != nil {
		r.tab.Recompile(lab)
	}
}

// NewRouter builds a baseline SPAM router over a labeling with compiled
// routing tables.
func NewRouter(lab *updown.Labeling) *Router {
	return NewRouterPolicy(lab, PolicyBaseline)
}

// NewRouterPolicy builds a SPAM router with compiled routing tables for the
// given routing policy. Non-baseline policies additionally compile the
// deroute and adaptive extras planes (DerouteChannels, AdaptiveChannels);
// the baseline candidate planes are identical across policies.
func NewRouterPolicy(lab *updown.Labeling, pol Policy) *Router {
	return &Router{Net: lab.Net, Lab: lab, tab: compileTables(lab, pol), pol: pol}
}

// NewReferenceRouter builds a SPAM router that recomputes every routing
// decision from the labeling instead of using compiled tables. Slower and
// allocating, but with no precomputed state beyond the labeling — the
// implementation the tables are verified against.
func NewReferenceRouter(lab *updown.Labeling) *Router {
	return NewReferenceRouterPolicy(lab, PolicyBaseline)
}

// NewReferenceRouterPolicy builds a reference (compute-per-event) router for
// the given routing policy.
func NewReferenceRouterPolicy(lab *updown.Labeling, pol Policy) *Router {
	return &Router{Net: lab.Net, Lab: lab, pol: pol}
}

// Policy reports the router's routing-policy family.
func (r *Router) Policy() Policy { return r.pol }

// TableDriven reports whether this router answers routing queries from
// compiled tables (NewRouter) rather than by recomputation
// (NewReferenceRouter).
func (r *Router) TableDriven() bool { return r.tab != nil }

// Tables exposes the compiled decision structure (nil in reference mode).
func (r *Router) Tables() *Tables { return r.tab }

// TableMemStats reports the compiled tables' memory accounting; the zero
// value in reference mode (no tables are held).
func (r *Router) TableMemStats() MemStats {
	if r.tab == nil {
		return MemStats{}
	}
	return r.tab.MemStats()
}

// Candidate is one legal output channel for a header in phase 1, with the
// selection key the paper describes (distance from the channel endpoint to
// the LCA).
type Candidate struct {
	Channel topology.ChannelID
	// DistToLCA is the switch-graph hop distance from the channel's
	// endpoint to the LCA switch.
	DistToLCA int32
}

// CandidateOutputs returns the legal output channels at switch `at` for a
// header that arrived with the given arrival class and is being routed to
// lcaSwitch (phase 1). Candidates are ordered by the paper's selection
// priority: ascending distance from the channel endpoint to the LCA, with
// channel ID as the deterministic tiebreak. The list is never empty while
// at != lcaSwitch (reachability is guaranteed by the up*/down* structure);
// at == lcaSwitch is the caller's signal to switch to distribution.
//
// The returned slice is freshly allocated; the allocation-free hot-path
// variant is CandidateChannels.
func (r *Router) CandidateOutputs(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	if r.tab == nil {
		return r.ReferenceCandidateOutputs(at, arrival, lcaSwitch)
	}
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: CandidateOutputs at non-switch %d", at))
	}
	row := r.tab.candidates(arrival, at, lcaSwitch)
	out := make([]Candidate, len(row))
	for i, c := range row {
		out[i] = Candidate{Channel: c, DistToLCA: r.Lab.SwitchDist[r.Net.Chan(c).Dst][lcaSwitch]}
	}
	return out
}

// CandidateChannels is the zero-allocation form of CandidateOutputs: the
// channels of the candidate list in selection order, without the distance
// keys (the order already encodes them). With tables the returned slice
// aliases the compiled arena and MUST NOT be mutated; in reference mode it is
// freshly computed (and allocates — reference mode is the debug path).
func (r *Router) CandidateChannels(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []topology.ChannelID {
	if r.tab != nil {
		if !r.Net.IsSwitch(at) {
			panic(fmt.Sprintf("core: CandidateChannels at non-switch %d", at))
		}
		return r.tab.candidates(arrival, at, lcaSwitch)
	}
	cands := r.ReferenceCandidateOutputs(at, arrival, lcaSwitch)
	out := make([]topology.ChannelID, len(cands))
	for i, cand := range cands {
		out[i] = cand.Channel
	}
	return out
}

// ReferenceCandidateOutputs is the original compute-per-event routing
// function: it filters the switch's output channels through the up*/down*
// legality rules and sorts by the selection priority on every call. It is the
// specification the compiled tables are tested against.
func (r *Router) ReferenceCandidateOutputs(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: CandidateOutputs at non-switch %d", at))
	}
	var out []Candidate
	for _, c := range r.Net.Out(at) {
		ch := r.Net.Chan(c)
		if r.Net.IsProcessor(ch.Dst) {
			// Consumption channels are used only in distribution.
			continue
		}
		if r.Lab.IsDown(c) {
			// Failed channels carry no traffic.
			continue
		}
		switch r.Lab.ClassOf[c] {
		case updown.Up:
			// Rule 1: legal only when the header is still in the up
			// sub-network (arrived on an up channel or injection).
			if arrival != ArriveUp && arrival != ArriveInjection {
				continue
			}
		case updown.DownCross:
			// Rule 2: legal from up or down-cross arrivals when the
			// endpoint is an extended ancestor of the destination.
			if arrival == ArriveDownTree {
				continue
			}
			if !r.Lab.IsExtendedAncestor(ch.Dst, lcaSwitch) {
				continue
			}
		case updown.DownTree:
			// Rule 3: legal in all cases when the endpoint is an
			// ancestor of the destination.
			if !r.Lab.IsAncestor(ch.Dst, lcaSwitch) {
				continue
			}
		}
		out = append(out, Candidate{Channel: c, DistToLCA: r.Lab.SwitchDist[ch.Dst][lcaSwitch]})
	}
	sortCandidates(out)
	return out
}

// DerouteChannels returns the deroute-extras row for (at, arrival, lca):
// the live down-cross channels a down-tree arrival may cross out of its
// subtree on — baseline-illegal under the paper's Rule 2 arrival clause,
// but with an extended-ancestor endpoint, so the worm still completes the
// route down-monotonically (see referenceExtras for why this is the unique
// deadlock-safe relaxation; cells with other arrival classes are empty).
// Candidates are ordered by (DistToLCA, ChannelID) like the baseline rows.
// Up channels never appear: policy hops must not climb, which is what keeps
// every policy family's dependency relation — and its escape subrelation —
// acyclic.
//
// The row is empty for PolicyBaseline routers. With tables the returned
// slice aliases the compiled arena and MUST NOT be mutated; in reference
// mode it is freshly computed.
func (r *Router) DerouteChannels(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []topology.ChannelID {
	if r.pol == PolicyBaseline {
		return nil
	}
	if r.tab != nil {
		if !r.Net.IsSwitch(at) {
			panic(fmt.Sprintf("core: DerouteChannels at non-switch %d", at))
		}
		return r.tab.deroute(arrival, at, lcaSwitch)
	}
	return channelsOf(r.ReferenceDerouteOutputs(at, arrival, lcaSwitch))
}

// AdaptiveChannels returns the adaptive-extras row for (at, arrival, lca):
// the full viable extras row, identical to DerouteChannels but compiled into
// its own planes so the two families stay independently certifiable. A
// Duato-policy worm may take any of these without budget whenever one is
// instantly free; none is ever waited on. The row is ordered by
// (DistToLCA, id), so shortcut sidesteps are preferred when several are
// free. Distance-productivity is deliberately NOT required: a productive
// extra is provably unreachable under BFS up*/down* labelings (see
// referenceExtras), and termination follows from every extra being a
// down-cross channel — down channels strictly ascend the labeling's
// (level, id) order, so any worm's path length is bounded without a budget.
//
// The row is empty for PolicyBaseline routers. With tables the returned
// slice aliases the compiled arena and MUST NOT be mutated; in reference
// mode it is freshly computed.
func (r *Router) AdaptiveChannels(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []topology.ChannelID {
	if r.pol == PolicyBaseline {
		return nil
	}
	if r.tab != nil {
		if !r.Net.IsSwitch(at) {
			panic(fmt.Sprintf("core: AdaptiveChannels at non-switch %d", at))
		}
		return r.tab.adaptive(arrival, at, lcaSwitch)
	}
	return channelsOf(r.ReferenceAdaptiveOutputs(at, arrival, lcaSwitch))
}

func channelsOf(cands []Candidate) []topology.ChannelID {
	if len(cands) == 0 {
		return nil
	}
	out := make([]topology.ChannelID, len(cands))
	for i, cand := range cands {
		out[i] = cand.Channel
	}
	return out
}

// ReferenceDerouteOutputs is the compute-per-event specification of the
// deroute-extras row the policy tables are verified against.
func (r *Router) ReferenceDerouteOutputs(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	return r.referenceExtras(at, arrival, lcaSwitch)
}

// ReferenceAdaptiveOutputs is the compute-per-event specification of the
// adaptive-extras row the policy tables are verified against.
func (r *Router) ReferenceAdaptiveOutputs(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	return r.referenceExtras(at, arrival, lcaSwitch)
}

// referenceExtras computes the extras of one cell: the channels that are
// not up*/down*-legal for (arrival, lca) but whose use provably preserves
// the deadlock certificate. Within the paper's framework exactly one
// legality clause is relaxable:
//
//   - Rule 1 (ups from up/injection arrivals) is already maximal — every up
//     channel is a baseline candidate, so the up phase is fully adaptive.
//   - Climbing from a down arrival would let a worm hold a down channel
//     while stretching back into the up sub-network, adding down→up edges
//     to the channel dependency relation — the classic unrestricted-
//     misrouting deadlock. Up channels are therefore never extras.
//   - Rule 3 (down-tree channels) is maximal too: a down-tree channel whose
//     endpoint is not an ancestor of the LCA can never complete the descent.
//   - Rule 2 restricts down-cross channels to up/down-cross arrivals. That
//     arrival clause is the relaxable one: a worm already descending a
//     subtree (down-tree arrival) may cross sideways out of it on a
//     down-cross channel whose endpoint is an extended ancestor of the LCA
//     and complete the route down-monotonically from there.
//
// Because every extra is a down channel and down channels strictly ascend
// the labeling's (level, id) order, the relation enlarged by extras remains
// acyclic — including Duato-style indirect dependencies, which are paths in
// it (deadlock.VerifyPolicy and the zoo battery certify both graphs). The
// same lexicographic ascent bounds every worm's path length, so Duato
// routing terminates without a budget or a distance-productivity filter.
//
// A productivity filter (endpoint strictly closer to the LCA) was in fact
// tried for the adaptive planes and proved *vacuous at every reachable
// cell*: a worm holding a down-tree arrival sits at a tree ancestor of its
// LCA, whose tree descent is already a shortest path under BFS levels, and
// the BFS discovery order guarantees any strictly-shorter cross sidestep
// would have captured the LCA's parent pointer into its own subtree —
// contradicting the ancestor relation. The adaptive row is therefore the
// full extras row (the deroute row), ordered by (DistToLCA, id).
func (r *Router) referenceExtras(at topology.NodeID, arrival ArrivalClass, lcaSwitch topology.NodeID) []Candidate {
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: extras at non-switch %d", at))
	}
	if arrival != ArriveDownTree {
		return nil
	}
	var out []Candidate
	for _, c := range r.Net.Out(at) {
		ch := r.Net.Chan(c)
		if r.Net.IsProcessor(ch.Dst) || r.Lab.IsDown(c) {
			continue
		}
		if r.Lab.ClassOf[c] != updown.DownCross {
			continue
		}
		end := ch.Dst
		if !r.Lab.IsExtendedAncestor(end, lcaSwitch) {
			continue // cannot complete the descent: not viable
		}
		out = append(out, Candidate{Channel: c, DistToLCA: r.Lab.SwitchDist[end][lcaSwitch]})
	}
	sortCandidates(out)
	return out
}

// DistributionOutputs returns the set of down-tree output channels required
// at switch `at` during the distribution phase for the given destination set
// (a bitset over node IDs): every child tree channel whose subtree contains
// a destination, including consumption channels to locally attached
// destination processors. The result is sorted by channel ID; the request
// for this set must be enqueued atomically by the router model.
//
// The returned slice is freshly allocated; the allocation-free hot-path
// variant is AppendDistributionOutputs.
func (r *Router) DistributionOutputs(at topology.NodeID, dests *bitset.Set) []topology.ChannelID {
	if r.tab == nil {
		return r.ReferenceDistributionOutputs(at, dests)
	}
	return r.AppendDistributionOutputs(nil, at, dests)
}

// AppendDistributionOutputs appends the distribution output set of switch
// `at` to dst and returns the extended slice. The subtree tests are fused
// AND+popcount kernels over the labeling's precomputed descendant bitsets
// (bitset.AndCount — no temporary set, one POPCNT per word): counting
// instead of merely testing lets the scan stop as soon as every destination
// below `at` has been attributed to a child, which on wide switches skips
// the tail of the child list entirely. Child channels are scanned in their
// fixed ascending-ID order, so the call performs no sort and (given capacity
// in dst) no allocation. In reference mode it delegates to the original
// per-destination ancestor walk.
func (r *Router) AppendDistributionOutputs(dst []topology.ChannelID, at topology.NodeID, dests *bitset.Set) []topology.ChannelID {
	if r.tab == nil {
		return append(dst, r.ReferenceDistributionOutputs(at, dests)...)
	}
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: DistributionOutputs at non-switch %d", at))
	}
	// Destinations still unattributed among at's descendants: child subtrees
	// partition them (at itself is a switch, never a destination).
	remaining := r.Lab.Descendants(at).AndCount(dests)
	for _, c := range r.Lab.ChildChans[at] {
		if remaining == 0 {
			break
		}
		child := r.Net.Chan(c).Dst
		if r.Net.IsProcessor(child) {
			if dests.Test(int(child)) {
				dst = append(dst, c)
				remaining--
			}
			continue
		}
		if n := r.Lab.Descendants(child).AndCount(dests); n > 0 {
			dst = append(dst, c)
			remaining -= n
		}
	}
	return dst
}

// ReferenceDistributionOutputs is the original compute-per-event
// distribution function: a per-destination ancestor walk per child subtree
// followed by a sort. It is the specification AppendDistributionOutputs is
// tested against.
func (r *Router) ReferenceDistributionOutputs(at topology.NodeID, dests *bitset.Set) []topology.ChannelID {
	if !r.Net.IsSwitch(at) {
		panic(fmt.Sprintf("core: DistributionOutputs at non-switch %d", at))
	}
	var out []topology.ChannelID
	for _, c := range r.Lab.ChildChans[at] {
		child := r.Net.Chan(c).Dst
		if r.Net.IsProcessor(child) {
			if dests.Test(int(child)) {
				out = append(out, c)
			}
			continue
		}
		if r.subtreeContains(child, dests) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// subtreeContains reports whether any destination lies in the tree subtree
// rooted at switch `root` (i.e. root is an ancestor of some destination).
func (r *Router) subtreeContains(root topology.NodeID, dests *bitset.Set) bool {
	found := false
	dests.ForEach(func(d int) bool {
		if r.Lab.IsAncestor(root, topology.NodeID(d)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// LCASwitch returns the switch at which distribution begins for the given
// destination processors.
func (r *Router) LCASwitch(dests []topology.NodeID) topology.NodeID {
	return r.Lab.LCASwitch(dests)
}

// DestSet builds the bitset form of a destination list, validating that all
// destinations are distinct processors.
func (r *Router) DestSet(dests []topology.NodeID) (*bitset.Set, error) {
	s := bitset.New(r.Net.N())
	if err := r.DestSetInto(s, dests); err != nil {
		return nil, err
	}
	return s, nil
}

// DestSetInto is the allocation-free form of DestSet: it clears dst (which
// must have capacity Net.N()) and fills it with the destination list,
// validating that all destinations are distinct processors. Resettable
// simulators use it to rebuild a recycled worm's destination set in place.
func (r *Router) DestSetInto(dst *bitset.Set, dests []topology.NodeID) error {
	if len(dests) == 0 {
		return fmt.Errorf("core: empty destination set")
	}
	dst.Reset()
	for _, d := range dests {
		if !r.Net.IsProcessor(d) {
			return fmt.Errorf("core: destination %d is not a processor", d)
		}
		if dst.Test(int(d)) {
			return fmt.Errorf("core: duplicate destination %d", d)
		}
		dst.Set(int(d))
	}
	return nil
}

// TreeReach counts the channels of the distribution subtree for a
// destination set rooted at the LCA: the exact number of down-tree channels
// a SPAM worm will traverse in phase 2. Used by analytics and tests.
//
// The walk is iterative and tests subtrees directly against the labeling's
// descendant bitsets, so it performs no per-switch DistributionOutputs
// allocation (only the destination bitset and one traversal stack).
func (r *Router) TreeReach(dests []topology.NodeID) (int, error) {
	ds, err := r.DestSet(dests)
	if err != nil {
		return 0, err
	}
	lca := r.LCASwitch(dests)
	count := 0
	stack := make([]topology.NodeID, 0, r.Net.NumSwitches)
	stack = append(stack, lca)
	for len(stack) > 0 {
		sw := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range r.Lab.ChildChans[sw] {
			child := r.Net.Chan(c).Dst
			if r.Net.IsProcessor(child) {
				if ds.Test(int(child)) {
					count++
				}
				continue
			}
			if r.Lab.SubtreeIntersects(child, ds) {
				count++
				stack = append(stack, child)
			}
		}
	}
	return count, nil
}
