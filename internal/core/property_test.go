package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/updown"
)

func randomRouters(t *testing.T, count int) []*Router {
	t.Helper()
	var out []*Router
	for seed := uint64(0); int(seed) < count; seed++ {
		n := 6 + int(seed*11)%60
		net, err := topology.RandomLattice(topology.DefaultLattice(n, seed*31+7))
		if err != nil {
			t.Fatal(err)
		}
		lab, err := updown.New(net, updown.RootStrategy(seed%3))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, NewRouter(lab))
	}
	return out
}

// Property: on random irregular topologies, a greedy phase-1 path exists from
// every processor to every LCA switch, terminates, and is legal.
func TestPhase1AlwaysRoutable(t *testing.T) {
	r := rng.New(101)
	for _, router := range randomRouters(t, 12) {
		net := router.Net
		for trial := 0; trial < 40; trial++ {
			src := topology.NodeID(net.NumSwitches + r.Intn(net.NumProcs))
			lca := topology.NodeID(r.Intn(net.NumSwitches))
			path, err := router.Phase1Path(src, lca)
			if err != nil {
				t.Fatalf("n=%d src=%d lca=%d: %v", net.NumSwitches, src, lca, err)
			}
			if err := router.CheckLegalUnicastPath(src, lca, path); err != nil {
				t.Fatalf("n=%d src=%d lca=%d: illegal path: %v", net.NumSwitches, src, lca, err)
			}
		}
	}
}

// Property: CandidateOutputs is never empty when the header has not reached
// the LCA, for any arrival class consistent with a reachable state. States
// consistent with down-cross arrival require the current switch to be an
// extended ancestor of the LCA; with down-tree arrival, an ancestor.
func TestRoutingFunctionTotal(t *testing.T) {
	r := rng.New(202)
	for _, router := range randomRouters(t, 8) {
		net := router.Net
		for trial := 0; trial < 60; trial++ {
			at := topology.NodeID(r.Intn(net.NumSwitches))
			lca := topology.NodeID(r.Intn(net.NumSwitches))
			if at == lca {
				continue
			}
			// Up/injection arrivals are always reachable states.
			if got := router.CandidateOutputs(at, ArriveUp, lca); len(got) == 0 {
				t.Fatalf("no outputs at %d (up arrival) toward %d", at, lca)
			}
			if router.Lab.IsExtendedAncestor(at, lca) {
				if got := router.CandidateOutputs(at, ArriveDownCross, lca); len(got) == 0 {
					t.Fatalf("no outputs at ext-ancestor %d (cross arrival) toward %d", at, lca)
				}
			}
			if router.Lab.IsAncestor(at, lca) {
				if got := router.CandidateOutputs(at, ArriveDownTree, lca); len(got) == 0 {
					t.Fatalf("no outputs at ancestor %d (tree arrival) toward %d", at, lca)
				}
			}
		}
	}
}

// Property: every candidate channel preserves reachability — after taking
// it, the routing function still offers a path to the LCA (checked by
// greedily extending to termination with a step budget).
func TestCandidatesPreserveReachability(t *testing.T) {
	r := rng.New(303)
	for _, router := range randomRouters(t, 6) {
		net := router.Net
		for trial := 0; trial < 25; trial++ {
			at := topology.NodeID(r.Intn(net.NumSwitches))
			lca := topology.NodeID(r.Intn(net.NumSwitches))
			if at == lca {
				continue
			}
			for _, cand := range router.CandidateOutputs(at, ArriveUp, lca) {
				pos := net.Chan(cand.Channel).Dst
				arrival := ArrivalOf(router.Lab.ClassOf[cand.Channel])
				steps := 0
				for pos != lca {
					cands := router.CandidateOutputs(pos, arrival, lca)
					if len(cands) == 0 {
						t.Fatalf("dead end at %d after taking %d toward %d", pos, cand.Channel, lca)
					}
					pos = net.Chan(cands[0].Channel).Dst
					arrival = ArrivalOf(router.Lab.ClassOf[cands[0].Channel])
					if steps++; steps > 4*net.N() {
						t.Fatalf("no termination from %d toward %d", at, lca)
					}
				}
			}
		}
	}
}

// Property: the distribution subtree reaches every destination exactly once
// and never visits a subtree without destinations.
func TestDistributionCoversExactlyDests(t *testing.T) {
	r := rng.New(404)
	for _, router := range randomRouters(t, 8) {
		net := router.Net
		for trial := 0; trial < 30; trial++ {
			k := 1 + r.Intn(net.NumProcs)
			var dests []topology.NodeID
			for _, i := range r.Choose(net.NumProcs, k) {
				dests = append(dests, topology.NodeID(net.NumSwitches+i))
			}
			ds, err := router.DestSet(dests)
			if err != nil {
				t.Fatal(err)
			}
			lca := router.LCASwitch(dests)
			reached := map[topology.NodeID]int{}
			var walk func(sw topology.NodeID)
			walk = func(sw topology.NodeID) {
				for _, c := range router.DistributionOutputs(sw, ds) {
					dst := net.Chan(c).Dst
					if net.IsProcessor(dst) {
						reached[dst]++
						continue
					}
					walk(dst)
				}
			}
			walk(lca)
			if len(reached) != len(dests) {
				t.Fatalf("reached %d of %d dests", len(reached), len(dests))
			}
			for _, d := range dests {
				if reached[d] != 1 {
					t.Fatalf("dest %d reached %d times", d, reached[d])
				}
			}
		}
	}
}

// Property: zero-load latency is deterministic and sits inside provable
// bounds: at least startup + 2 hops + pipeline, at most startup + pipeline +
// the termination guard's worst-case path cost.
func TestZeroLoadLatencyBounds(t *testing.T) {
	r := rng.New(505)
	p := PaperParams()
	for _, router := range randomRouters(t, 6) {
		net := router.Net
		for trial := 0; trial < 20; trial++ {
			k := 1 + r.Intn(net.NumProcs)
			var dests []topology.NodeID
			for _, i := range r.Choose(net.NumProcs, k) {
				dests = append(dests, topology.NodeID(net.NumSwitches+i))
			}
			src := topology.NodeID(net.NumSwitches + r.Intn(net.NumProcs))
			lat, err := router.ZeroLoadLatency(p, src, dests)
			if err != nil {
				t.Fatal(err)
			}
			again, err := router.ZeroLoadLatency(p, src, dests)
			if err != nil {
				t.Fatal(err)
			}
			if lat != again {
				t.Fatalf("latency not deterministic: %d vs %d", lat, again)
			}
			pipeline := int64(p.MessageFlits-1) * p.ChanPropNs
			lo := p.StartupNs + pipeline + 2*p.ChanPropNs + p.RouterSetupNs
			hi := p.StartupNs + pipeline + int64(5*net.N())*(p.RouterSetupNs+p.ChanPropNs)
			if lat < lo || lat > hi {
				t.Fatalf("latency %d outside [%d, %d]", lat, lo, hi)
			}
		}
	}
}
