package core

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/updown"
)

func fig1Router(t *testing.T) *Router {
	t.Helper()
	net, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	lab, err := updown.NewWithRoot(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(lab)
}

// Figure-1 ID map (paper -> ours): switches 1..4,6,7 -> 0..5;
// processors 5 -> 6, 8 -> 7, 9 -> 8, 10 -> 9, 11 -> 10.

func TestPaperExampleLCA(t *testing.T) {
	r := fig1Router(t)
	// Multicast from paper node 5 to {8,9,10,11}: LCA is paper node 4 = 3.
	if got := r.LCASwitch([]topology.NodeID{7, 8, 9, 10}); got != 3 {
		t.Fatalf("LCA switch = %d want 3", got)
	}
}

func TestPaperExamplePhase1Path(t *testing.T) {
	r := fig1Router(t)
	// The paper gives 5,2,3,4 (our 6,1,2,3) as one legal path: up from the
	// processor, then two down-cross channels.
	path, err := r.Phase1Path(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckLegalUnicastPath(6, 3, path); err != nil {
		t.Fatal(err)
	}
	// The greedy selection takes 6 -> 1 (injection), then the down-cross
	// 1->2, then down-cross 2->3: exactly the paper's example path.
	want := []topology.NodeID{1, 2, 3}
	at := topology.NodeID(6)
	if len(path) != 3 {
		t.Fatalf("path length %d: %v", len(path), path)
	}
	for i, c := range path {
		ch := r.Net.Chan(c)
		if ch.Src != at || ch.Dst != want[i] {
			t.Fatalf("hop %d: %d->%d, want ->%d", i, ch.Src, ch.Dst, want[i])
		}
		at = ch.Dst
	}
}

func TestPaperExampleDistribution(t *testing.T) {
	r := fig1Router(t)
	ds, err := r.DestSet([]topology.NodeID{7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	// At the LCA (switch 3), the worm must request the two down-tree
	// channels to switches 4 and 6 (paper nodes 6 and 7).
	outs := r.DistributionOutputs(3, ds)
	if len(outs) != 2 {
		t.Fatalf("distribution outputs at LCA: %v", outs)
	}
	dsts := map[topology.NodeID]bool{}
	for _, c := range outs {
		dsts[r.Net.Chan(c).Dst] = true
	}
	if !dsts[4] || !dsts[5] {
		t.Fatalf("LCA fan-out goes to %v, want switches 4 and 5", dsts)
	}
	// At switch 4 (paper 6): three consumption channels to procs 7, 8, 9.
	outs4 := r.DistributionOutputs(4, ds)
	if len(outs4) != 3 {
		t.Fatalf("switch 4 outputs: %v", outs4)
	}
	// At switch 5 (paper 7): one consumption channel to proc 10.
	outs5 := r.DistributionOutputs(5, ds)
	if len(outs5) != 1 || r.Net.Chan(outs5[0]).Dst != 10 {
		t.Fatalf("switch 5 outputs: %v", outs5)
	}
}

func TestDistributionSkipsNonDestinations(t *testing.T) {
	r := fig1Router(t)
	ds, _ := r.DestSet([]topology.NodeID{10}) // only paper node 11
	outs := r.DistributionOutputs(3, ds)
	if len(outs) != 1 || r.Net.Chan(outs[0]).Dst != 5 {
		t.Fatalf("outputs toward single dest: %v", outs)
	}
	if got := r.DistributionOutputs(4, ds); len(got) != 0 {
		t.Fatalf("switch 4 should have no outputs, got %v", got)
	}
}

func TestUnicastReducesToConsumption(t *testing.T) {
	r := fig1Router(t)
	// Unicast to proc 7: LCA switch is 4; distribution there is just the
	// consumption channel.
	lca := r.LCASwitch([]topology.NodeID{7})
	if lca != 4 {
		t.Fatalf("unicast LCA switch %d", lca)
	}
	ds, _ := r.DestSet([]topology.NodeID{7})
	outs := r.DistributionOutputs(lca, ds)
	if len(outs) != 1 || r.Net.Chan(outs[0]).Dst != 7 {
		t.Fatalf("unicast distribution %v", outs)
	}
}

func TestCandidateOrderingByDistance(t *testing.T) {
	r := fig1Router(t)
	cands := r.CandidateOutputs(0, ArriveInjection, 3)
	if len(cands) == 0 {
		t.Fatal("no candidates at root toward 3")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].DistToLCA > cands[i].DistToLCA {
			t.Fatalf("candidates not sorted: %+v", cands)
		}
	}
	// Best candidate endpoint must be strictly closer than `at` unless at
	// distance 1 already.
	best := r.Net.Chan(cands[0].Channel).Dst
	if r.Lab.SwitchDist[best][3] >= r.Lab.SwitchDist[0][3] {
		t.Fatalf("greedy candidate does not approach the LCA: %+v", cands[0])
	}
}

func TestCandidateRespectsArrivalClass(t *testing.T) {
	r := fig1Router(t)
	// After arriving on a down-cross channel, up channels are forbidden.
	for _, c := range r.CandidateOutputs(2, ArriveDownCross, 3) {
		if r.Lab.ClassOf[c.Channel] == updown.Up {
			t.Fatalf("up channel offered after down-cross arrival: %+v", c)
		}
	}
	// After a down-tree arrival, only down-tree channels remain.
	for _, c := range r.CandidateOutputs(2, ArriveDownTree, 3) {
		if r.Lab.ClassOf[c.Channel] != updown.DownTree {
			t.Fatalf("non-tree channel offered after tree arrival: %+v", c)
		}
	}
}

func TestDestSetValidation(t *testing.T) {
	r := fig1Router(t)
	if _, err := r.DestSet(nil); err == nil {
		t.Fatal("empty dest set accepted")
	}
	if _, err := r.DestSet([]topology.NodeID{3}); err == nil {
		t.Fatal("switch destination accepted")
	}
	if _, err := r.DestSet([]topology.NodeID{7, 7}); err == nil {
		t.Fatal("duplicate destination accepted")
	}
	if _, err := r.DestSet([]topology.NodeID{7, 8}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeReach(t *testing.T) {
	r := fig1Router(t)
	// Dests {7,8,9,10}: LCA 3; channels 3->4, 3->5, 4->7, 4->8, 4->9,
	// 5->10 = 6 channels.
	n, err := r.TreeReach([]topology.NodeID{7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("TreeReach=%d want 6", n)
	}
	// Single destination on its own switch: 1 consumption channel.
	n, _ = r.TreeReach([]topology.NodeID{6})
	if n != 1 {
		t.Fatalf("TreeReach single=%d want 1", n)
	}
}

func TestPaperParamsAndValidate(t *testing.T) {
	p := PaperParams()
	if p.StartupNs != 10000 || p.RouterSetupNs != 40 || p.ChanPropNs != 10 || p.MessageFlits != 128 {
		t.Fatalf("paper params %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.MessageFlits = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1-flit message accepted")
	}
	bad = p
	bad.ChanPropNs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero propagation accepted")
	}
	bad = p
	bad.StartupNs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative startup accepted")
	}
}

func TestZeroLoadLatencyClosedForm(t *testing.T) {
	r := fig1Router(t)
	p := PaperParams()
	// Unicast 6 -> 7 (paper 5 -> 8): greedy path 6,1,2,3 then tree 3->4->7:
	// channels = [6->1, 1->2, 2->3, 3->4, 4->7] = 5 hops, 4 routers.
	lat, err := r.ZeroLoadLatency(p, 6, []topology.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	want := p.StartupNs + 4*p.RouterSetupNs + 5*p.ChanPropNs + int64(p.MessageFlits-1)*p.ChanPropNs
	if lat != want {
		t.Fatalf("zero-load latency %d want %d", lat, want)
	}
	// Multicast to all four far processors is governed by the same depth.
	lat4, err := r.ZeroLoadLatency(p, 6, []topology.NodeID{7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if lat4 != want {
		t.Fatalf("multicast zero-load latency %d want %d (same depth)", lat4, want)
	}
}

func TestMulticastPathsConnected(t *testing.T) {
	r := fig1Router(t)
	paths, err := r.MulticastPaths(6, []topology.NodeID{7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	for d, path := range paths {
		at := topology.NodeID(6)
		for _, c := range path {
			ch := r.Net.Chan(c)
			if ch.Src != at {
				t.Fatalf("dest %d: discontinuous path", d)
			}
			at = ch.Dst
		}
		if at != d {
			t.Fatalf("path for %d ends at %d", d, at)
		}
	}
}

func TestPhase1PathErrors(t *testing.T) {
	r := fig1Router(t)
	if _, err := r.Phase1Path(3, 3); err == nil {
		t.Fatal("switch source accepted")
	}
	if _, err := r.Phase1Path(6, 7); err == nil {
		t.Fatal("processor LCA accepted")
	}
}

func TestCheckLegalUnicastPathRejections(t *testing.T) {
	r := fig1Router(t)
	if err := r.CheckLegalUnicastPath(6, 3, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	// A path that goes up after a down-cross: 6->1 (up), 1->2 (cross),
	// 2->1?? reverse of 1->2 is up: craft [6->1, 1->2, 2->0].
	up20 := r.Net.ChannelBetween(2, 0)
	inj := r.Net.ChannelBetween(6, 1)
	cross := r.Net.ChannelBetween(1, 2)
	err := r.CheckLegalUnicastPath(6, 0, []topology.ChannelID{inj, cross, up20})
	if err == nil {
		t.Fatal("up-after-cross path accepted")
	}
	// Discontinuous path.
	err = r.CheckLegalUnicastPath(6, 3, []topology.ChannelID{cross})
	if err == nil {
		t.Fatal("discontinuous path accepted")
	}
}

func TestArrivalOfMapping(t *testing.T) {
	if ArrivalOf(updown.Up) != ArriveUp ||
		ArrivalOf(updown.DownCross) != ArriveDownCross ||
		ArrivalOf(updown.DownTree) != ArriveDownTree {
		t.Fatal("ArrivalOf mapping wrong")
	}
	if ArriveInjection.String() != "injection" || ArriveUp.String() != "up" {
		t.Fatal("arrival strings wrong")
	}
}
