package updown

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func quickLabeling(t *testing.T, seed uint64, sizeSel, rootSel uint8) *Labeling {
	t.Helper()
	n := 2 + int(sizeSel%60)
	net, err := topology.RandomLattice(topology.DefaultLattice(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(net, RootStrategy(rootSel%3))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Property (quick): every channel gets exactly one class and Verify passes
// for arbitrary seeds, sizes and root strategies.
func TestQuickVerify(t *testing.T) {
	f := func(seed uint64, sizeSel, rootSel uint8) bool {
		l := quickLabeling(t, seed, sizeSel, rootSel)
		return l.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): the ancestor relation is a partial order — reflexive,
// antisymmetric (except identity) and transitive — on arbitrary labelings.
func TestQuickAncestorPartialOrder(t *testing.T) {
	f := func(seed uint64, sizeSel, rootSel uint8, aSel, bSel, cSel uint16) bool {
		l := quickLabeling(t, seed, sizeSel, rootSel)
		n := l.Net.N()
		a := topology.NodeID(int(aSel) % n)
		b := topology.NodeID(int(bSel) % n)
		c := topology.NodeID(int(cSel) % n)
		// Reflexive.
		if !l.IsAncestor(a, a) {
			return false
		}
		// Antisymmetric.
		if a != b && l.IsAncestor(a, b) && l.IsAncestor(b, a) {
			return false
		}
		// Transitive.
		if l.IsAncestor(a, b) && l.IsAncestor(b, c) && !l.IsAncestor(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): LCA is commutative, idempotent and monotone along the
// parent chain: LCA(a, parent(a)) == parent(a).
func TestQuickLCAAlgebra(t *testing.T) {
	f := func(seed uint64, sizeSel, rootSel uint8, aSel, bSel uint16) bool {
		l := quickLabeling(t, seed, sizeSel, rootSel)
		n := l.Net.N()
		a := topology.NodeID(int(aSel) % n)
		b := topology.NodeID(int(bSel) % n)
		if l.LCA(a, b) != l.LCA(b, a) {
			return false
		}
		if l.LCA(a, a) != a {
			return false
		}
		if p := l.Parent[a]; p >= 0 && l.LCA(a, p) != p {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): extended-ancestorship is transitive through the cross
// DAG: if u is ext-ancestor of v and v's tree ancestors include w with a
// cross edge chain... the directly checkable closure property is that the
// extended-ancestor set of a node contains the extended-ancestor set
// reachability through any down-cross channel endpoint that is a tree
// ancestor: for every down-cross channel x->y with y an ancestor of v,
// x must be an extended ancestor of v.
func TestQuickExtendedAncestorClosure(t *testing.T) {
	f := func(seed uint64, sizeSel, rootSel uint8, vSel uint16) bool {
		l := quickLabeling(t, seed, sizeSel, rootSel)
		v := topology.NodeID(int(vSel) % l.Net.N())
		for i := range l.Net.Channels {
			if l.ClassOf[i] != DownCross {
				continue
			}
			ch := &l.Net.Channels[i]
			if l.IsExtendedAncestor(ch.Dst, v) && !l.IsExtendedAncestor(ch.Src, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
