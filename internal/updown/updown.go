package updown

import (
	"fmt"
	"slices"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// Class is the SPAM classification of a unidirectional channel.
type Class uint8

const (
	// Up channels point toward the root (tree or cross; SPAM does not
	// distinguish them).
	Up Class = iota
	// DownTree channels are tree channels pointing away from the root.
	DownTree
	// DownCross channels are cross channels pointing away from the root.
	DownCross
)

func (c Class) String() string {
	switch c {
	case Up:
		return "up"
	case DownTree:
		return "down-tree"
	case DownCross:
		return "down-cross"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// RootStrategy selects the spanning-tree root switch.
type RootStrategy uint8

const (
	// RootMinID picks switch 0 (Autonet-style arbitrary choice).
	RootMinID RootStrategy = iota
	// RootMaxDegree picks the highest-degree switch (smallest ID on ties).
	RootMaxDegree
	// RootCenter picks a graph center of the switch graph, minimizing tree
	// depth (future-work ablation: judicious spanning-tree selection).
	RootCenter
)

func (s RootStrategy) String() string {
	switch s {
	case RootMinID:
		return "min-id"
	case RootMaxDegree:
		return "max-degree"
	case RootCenter:
		return "center"
	}
	return fmt.Sprintf("RootStrategy(%d)", uint8(s))
}

// ParseRootStrategy parses the wire form of a root strategy. The empty
// string is min-id (the zero value), so omitted request/manifest fields keep
// the Autonet-style default.
func ParseRootStrategy(name string) (RootStrategy, error) {
	switch name {
	case "", "min-id":
		return RootMinID, nil
	case "max-degree":
		return RootMaxDegree, nil
	case "center":
		return RootCenter, nil
	}
	return 0, fmt.Errorf("updown: unknown root strategy %q (min-id | max-degree | center)", name)
}

// Labeling is the full up*/down* structure for a network.
//
// A Labeling can carry a *failed-channel mask* (Down): masked channels are
// physically present in the network but excluded from the spanning tree,
// from routing legality and from the selection distances — the Autonet-style
// view of a network with links down. Relabel recomputes the whole structure
// in place for a new mask, reusing every internal allocation, which is the
// hot-reconfiguration path the fault-injection engine drives.
type Labeling struct {
	Net  *topology.Network
	Root topology.NodeID

	// Level is the BFS level of every node; root has level 0, processors
	// sit one level below their switch.
	Level []int32
	// Parent is the spanning-tree parent of every node (-1 for root).
	Parent []topology.NodeID
	// ParentChan is the down-tree channel parent→node (None for root).
	ParentChan []topology.ChannelID
	// ChildChans lists the down-tree channels node→child per node.
	ChildChans [][]topology.ChannelID
	// ClassOf classifies every channel.
	ClassOf []Class
	// Down marks failed channels (nil or empty = none). Failed channels
	// keep a nominal class from the level rules (so structural checks keep
	// working) but are never tree channels, never legal routing candidates
	// and never contribute to cross-reachability.
	Down *bitset.Set

	// anc[v] is the set of tree ancestors of node v, v itself included
	// (so anc is the reflexive ancestor relation over all nodes).
	anc []*bitset.Set
	// desc[v] is the transpose of anc: the set of tree descendants of v,
	// v itself included. desc[v] ∩ D ≠ ∅ answers "does the subtree rooted
	// at v contain a destination?" with a handful of word-level ANDs —
	// the precomputed form of the distribution-phase subtree test.
	desc []*bitset.Set
	// extAnc[v] is the set of extended ancestors of v: nodes u with a path
	// of zero or more down-cross channels followed by zero or more
	// down-tree channels from u to v. Reflexive.
	extAnc []*bitset.Set
	// extDesc[v] is the transpose of extAnc: the set of nodes v is an
	// extended ancestor of. Table compilation streams its words to test
	// extended-ancestor legality for one channel endpoint across a whole
	// block of LCAs at once (the desc-to-anc trick, applied to extAnc).
	extDesc []*bitset.Set
	// crossReach[w] is the set of nodes that can reach w using only
	// down-cross channels (reflexive). Defined over switches only but
	// stored for all nodes for uniform indexing.
	crossReach []*bitset.Set

	// SwitchDist is the hop-distance matrix over the live switch graph,
	// used by the selection function (distance from channel endpoint to
	// LCA along non-failed links).
	SwitchDist [][]int32

	// scratch holds the reusable working storage of Relabel.
	scratch *relabelScratch
}

// maskedEdge is one inter-switch adjacency entry with the channel that
// realizes it, so masked BFS can test the failure mask per hop.
type maskedEdge struct {
	sw int32
	ch topology.ChannelID
}

// relabelScratch is the retained working storage of Relabel: a sorted
// inter-switch adjacency (static per network) and BFS/counting-sort queues.
type relabelScratch struct {
	// nbrs[sw] lists the inter-switch neighbors of sw in ascending switch
	// ID — the same exploration order graph.BFS uses, so an empty mask
	// reproduces the base labeling bit-for-bit.
	nbrs [][]maskedEdge
	// queue is the BFS frontier.
	queue []int32
	// levelCount/order implement the counting sort of buildAncestors.
	levelCount []int32
	order      []int32
}

// New computes the labeling for a network with the given root strategy.
func New(net *topology.Network, strategy RootStrategy) (*Labeling, error) {
	root, err := pickRoot(net, strategy)
	if err != nil {
		return nil, err
	}
	return NewWithRoot(net, root)
}

// NewWithRoot computes the labeling with an explicit root switch.
func NewWithRoot(net *topology.Network, root topology.NodeID) (*Labeling, error) {
	return NewWithDown(net, root, nil)
}

// NewWithDown computes the labeling with an explicit root switch and a
// failed-channel mask: channels marked in down (which must pair both
// directions of each failed link and contain no processor channels) are
// excluded from the spanning tree and from routing. A nil or empty mask
// yields exactly NewWithRoot's labeling.
func NewWithDown(net *topology.Network, root topology.NodeID, down *bitset.Set) (*Labeling, error) {
	if !net.IsSwitch(root) {
		return nil, fmt.Errorf("updown: root %d is not a switch", root)
	}
	l := &Labeling{Net: net, Root: root}
	if err := l.Relabel(down); err != nil {
		return nil, err
	}
	return l, nil
}

// Relabel recomputes the entire labeling in place for a new failed-channel
// mask, reusing every internal allocation (bitsets, child lists, distance
// rows, BFS scratch). After the first call on a given Labeling it performs
// no heap allocation, which makes it the hot path of live reconfiguration.
// It fails — leaving the labeling in an unspecified but reusable state — if
// the mask disconnects the switch graph.
func (l *Labeling) Relabel(down *bitset.Set) error {
	net := l.Net
	total := net.N()
	if down != nil && down.Len() != len(net.Channels) {
		return fmt.Errorf("updown: down mask sized %d for %d channels", down.Len(), len(net.Channels))
	}
	l.ensureStorage()
	l.Down.Reset()
	if down != nil {
		for c := down.NextSet(0); c >= 0; c = down.NextSet(c + 1) {
			ch := net.Chan(topology.ChannelID(c))
			if net.IsProcessor(ch.Src) || net.IsProcessor(ch.Dst) {
				return fmt.Errorf("updown: processor channel %d cannot fail", c)
			}
			if !down.Test(int(ch.Reverse)) {
				return fmt.Errorf("updown: down mask holds channel %d without its reverse %d", c, ch.Reverse)
			}
			l.Down.Set(c)
		}
	}
	root := l.Root

	// Masked BFS over the switch graph, neighbors in ascending switch ID
	// (matching graph.BFS exploration order).
	for v := 0; v < total; v++ {
		l.Level[v] = -1
		l.Parent[v] = -1
		l.ParentChan[v] = topology.None
	}
	sc := l.scratch
	queue := sc.queue[:0]
	l.Level[root] = 0
	queue = append(queue, int32(root))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, e := range sc.nbrs[u] {
			if l.Down.Test(int(e.ch)) {
				continue
			}
			if l.Level[e.sw] == -1 {
				l.Level[e.sw] = l.Level[u] + 1
				l.Parent[e.sw] = topology.NodeID(u)
				queue = append(queue, e.sw)
			}
		}
	}
	sc.queue = queue
	for sw := 0; sw < net.NumSwitches; sw++ {
		if l.Level[sw] < 0 {
			return fmt.Errorf("updown: switch %d unreachable from root %d", sw, root)
		}
	}
	l.Parent[root] = -1
	// Processors: leaves one level below their switch.
	for p := net.NumSwitches; p < total; p++ {
		pid := topology.NodeID(p)
		sw := net.SwitchOf(pid)
		l.Level[p] = l.Level[sw] + 1
		l.Parent[p] = sw
	}

	// Classify channels. Failed channels cannot be tree edges (BFS never
	// traverses them, and a simple graph has one edge per switch pair), so
	// they fall through to the level rules of the cross branch.
	for i := range net.Channels {
		ch := &net.Channels[i]
		src, dst := ch.Src, ch.Dst
		switch {
		case net.IsProcessor(src): // processor -> switch: up tree
			l.ClassOf[i] = Up
		case net.IsProcessor(dst): // switch -> processor: down tree
			l.ClassOf[i] = DownTree
		case l.Parent[src] == dst || l.Parent[dst] == src: // tree edge
			if l.Parent[src] == dst { // toward root
				l.ClassOf[i] = Up
			} else {
				l.ClassOf[i] = DownTree
			}
		default: // cross channel between switches
			ls, ld := l.Level[src], l.Level[dst]
			switch {
			case ls > ld: // deeper -> shallower: toward root
				l.ClassOf[i] = Up
			case ls < ld:
				l.ClassOf[i] = DownCross
			case src > dst: // same level: larger ID -> smaller is up
				l.ClassOf[i] = Up
			default:
				l.ClassOf[i] = DownCross
			}
		}
	}

	// Parent/child channel indexes.
	for v := 0; v < total; v++ {
		l.ChildChans[v] = l.ChildChans[v][:0]
	}
	for i := range net.Channels {
		ch := &net.Channels[i]
		if l.ClassOf[i] == DownTree && l.Parent[ch.Dst] == ch.Src {
			l.ParentChan[ch.Dst] = ch.ID
			l.ChildChans[ch.Src] = append(l.ChildChans[ch.Src], ch.ID)
		}
	}
	for v := 0; v < total; v++ {
		if topology.NodeID(v) != root && l.ParentChan[v] == topology.None {
			return fmt.Errorf("updown: node %d has no parent channel", v)
		}
	}

	// ChildChans must be in ascending channel-ID order: the distribution
	// fast path emits outputs by scanning them in place of the reference
	// implementation's sort. Construction above appends in channel-index
	// order, which is already ascending; the sort (slices.Sort allocates
	// nothing) is defensive so the fast path's correctness is local to
	// this file.
	for _, chans := range l.ChildChans {
		slices.Sort(chans)
	}

	l.buildAncestors()
	l.buildDescendants()
	l.buildCrossReach()
	l.buildExtendedAncestors()
	l.buildExtendedDescendants()
	l.buildSwitchDist()
	return nil
}

// ensureStorage allocates (once) every array Relabel writes into.
func (l *Labeling) ensureStorage() {
	net := l.Net
	total := net.N()
	if l.scratch != nil {
		return
	}
	l.Level = make([]int32, total)
	l.Parent = make([]topology.NodeID, total)
	l.ParentChan = make([]topology.ChannelID, total)
	l.ChildChans = make([][]topology.ChannelID, total)
	l.ClassOf = make([]Class, len(net.Channels))
	l.Down = bitset.New(len(net.Channels))
	l.anc = make([]*bitset.Set, total)
	l.desc = make([]*bitset.Set, total)
	l.extAnc = make([]*bitset.Set, total)
	l.extDesc = make([]*bitset.Set, total)
	l.crossReach = make([]*bitset.Set, total)
	for v := 0; v < total; v++ {
		l.anc[v] = bitset.New(total)
		l.desc[v] = bitset.New(total)
		l.extAnc[v] = bitset.New(total)
		l.extDesc[v] = bitset.New(total)
		l.crossReach[v] = bitset.New(total)
	}
	l.SwitchDist = make([][]int32, net.NumSwitches)
	for sw := range l.SwitchDist {
		l.SwitchDist[sw] = make([]int32, net.NumSwitches)
	}
	sc := &relabelScratch{
		nbrs:       make([][]maskedEdge, net.NumSwitches),
		queue:      make([]int32, 0, net.NumSwitches),
		levelCount: make([]int32, total+2),
		order:      make([]int32, total),
	}
	for sw := 0; sw < net.NumSwitches; sw++ {
		for _, c := range net.Out(topology.NodeID(sw)) {
			ch := net.Chan(c)
			if net.IsSwitch(ch.Dst) {
				sc.nbrs[sw] = append(sc.nbrs[sw], maskedEdge{sw: int32(ch.Dst), ch: c})
			}
		}
		slices.SortFunc(sc.nbrs[sw], func(a, b maskedEdge) int { return int(a.sw) - int(b.sw) })
	}
	l.scratch = sc
}

// buildSwitchDist fills the hop-distance matrix of the live (non-failed)
// switch graph by masked BFS from every switch, into the retained rows.
func (l *Labeling) buildSwitchDist() {
	net := l.Net
	sc := l.scratch
	for src := 0; src < net.NumSwitches; src++ {
		dist := l.SwitchDist[src]
		for i := range dist {
			dist[i] = -1
		}
		queue := sc.queue[:0]
		dist[src] = 0
		queue = append(queue, int32(src))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, e := range sc.nbrs[u] {
				if l.Down.Test(int(e.ch)) {
					continue
				}
				if dist[e.sw] == -1 {
					dist[e.sw] = dist[u] + 1
					queue = append(queue, e.sw)
				}
			}
		}
		sc.queue = queue
	}
}

func pickRoot(net *topology.Network, strategy RootStrategy) (topology.NodeID, error) {
	g := net.SwitchGraph()
	switch strategy {
	case RootMinID:
		return 0, nil
	case RootMaxDegree:
		best, bestDeg := 0, -1
		for sw := 0; sw < net.NumSwitches; sw++ {
			if d := g.Degree(sw); d > bestDeg {
				best, bestDeg = sw, d
			}
		}
		return topology.NodeID(best), nil
	case RootCenter:
		return topology.NodeID(g.Center()), nil
	}
	return 0, fmt.Errorf("updown: unknown root strategy %v", strategy)
}

func (l *Labeling) buildAncestors() {
	total := l.Net.N()
	// Process in increasing level order (parents are always shallower) via
	// a counting sort into the retained scratch: stable, so nodes within a
	// level stay in ascending ID order.
	sc := l.scratch
	count := sc.levelCount
	for i := range count {
		count[i] = 0
	}
	for _, lv := range l.Level {
		count[lv+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	for v := 0; v < total; v++ {
		lv := l.Level[v]
		sc.order[count[lv]] = int32(v)
		count[lv]++
	}
	for _, v32 := range sc.order {
		v := int(v32)
		s := l.anc[v]
		s.Reset()
		s.Set(v)
		if p := l.Parent[v]; p >= 0 {
			s.Or(l.anc[p])
		}
	}
}

// buildDescendants materializes the transpose of the ancestor relation:
// desc[u] = {v : u ∈ anc[v]}. Cost is O(Σ|anc[v]|) = O(N · depth) set bits.
func (l *Labeling) buildDescendants() {
	total := l.Net.N()
	for v := 0; v < total; v++ {
		l.desc[v].Reset()
	}
	for v := 0; v < total; v++ {
		// NextSet iteration instead of ForEach: no closure, so Relabel
		// stays allocation-free.
		for u := l.anc[v].NextSet(0); u >= 0; u = l.anc[v].NextSet(u + 1) {
			l.desc[u].Set(v)
		}
	}
}

// buildCrossReach computes, for every switch w, the set of switches that can
// reach w using only down-cross channels. The down-cross relation is acyclic
// (it strictly decreases (−level, −ID) lexicographically going backwards), so
// a reverse topological sweep suffices: process switches from shallowest to
// deepest so that when we process w, every predecessor u with a down-cross
// channel u→w has... (we need successors, so we sweep deepest-first over the
// *reverse* relation). Concretely: crossReach[w] = {w} ∪ ⋃ crossReach over
// incoming... we instead compute forward: reach[u] accumulates from its
// down-cross successors, then crossReach[w] is derived by transposition-free
// accumulation: we compute reachTo[w] directly by processing nodes in
// decreasing topological order of the down-cross DAG and propagating
// "reaches w" backwards — implemented as: for each down-cross channel u→v,
// crossReach[x] for all x... To keep it simple and O(V·E/64), we iterate to
// a fixed point, which converges in at most diameter steps.
func (l *Labeling) buildCrossReach() {
	total := l.Net.N()
	for v := 0; v < total; v++ {
		s := l.crossReach[v]
		s.Reset()
		s.Set(v)
	}
	// crossReach[w] ⊇ crossReach[u] whenever there is a down-cross channel
	// u→w is wrong direction: u reaches w, so anything reaching u also
	// reaches w: crossReach[w] |= crossReach[u] for each down-cross u→w.
	// Failed channels carry no traffic and are skipped. Iterate to fixed
	// point (the DAG is shallow; this is fast).
	for changed := true; changed; {
		changed = false
		for i := range l.Net.Channels {
			if l.ClassOf[i] != DownCross || l.Down.Test(i) {
				continue
			}
			ch := &l.Net.Channels[i]
			before := l.crossReach[ch.Dst].Count()
			l.crossReach[ch.Dst].Or(l.crossReach[ch.Src])
			if l.crossReach[ch.Dst].Count() != before {
				changed = true
			}
		}
	}
}

// buildExtendedAncestors computes extAnc[v] = ⋃_{w ∈ anc[v]} crossReach[w]:
// u is an extended ancestor of v iff u reaches some tree ancestor w of v via
// down-cross channels only, then w reaches v via down-tree channels.
func (l *Labeling) buildExtendedAncestors() {
	total := l.Net.N()
	for v := 0; v < total; v++ {
		s := l.extAnc[v]
		s.Reset()
		for w := l.anc[v].NextSet(0); w >= 0; w = l.anc[v].NextSet(w + 1) {
			s.Or(l.crossReach[w])
		}
	}
}

// buildExtendedDescendants materializes the transpose of the extended-
// ancestor relation, exactly as buildDescendants does for anc. Cost is
// O(Σ|extAnc[v]|) set bits.
func (l *Labeling) buildExtendedDescendants() {
	total := l.Net.N()
	for v := 0; v < total; v++ {
		l.extDesc[v].Reset()
	}
	for v := 0; v < total; v++ {
		for u := l.extAnc[v].NextSet(0); u >= 0; u = l.extAnc[v].NextSet(u + 1) {
			l.extDesc[u].Set(v)
		}
	}
}

// IsDown reports whether channel c is failed under this labeling's mask.
func (l *Labeling) IsDown(c topology.ChannelID) bool {
	return l.Down != nil && l.Down.Test(int(c))
}

// DownChannels exposes the failed-channel mask (never nil after Relabel).
// Shared; do not mutate.
func (l *Labeling) DownChannels() *bitset.Set { return l.Down }

// IsAncestor reports whether u is a (reflexive) tree ancestor of v: there is
// a path of zero or more down-tree channels from u to v.
func (l *Labeling) IsAncestor(u, v topology.NodeID) bool {
	return l.anc[v].Test(int(u))
}

// IsExtendedAncestor reports whether u is a (reflexive) extended ancestor of
// v: a path of zero or more down-cross channels followed by zero or more
// down-tree channels leads from u to v.
func (l *Labeling) IsExtendedAncestor(u, v topology.NodeID) bool {
	return l.extAnc[v].Test(int(u))
}

// Ancestors returns the (reflexive) ancestor set of v. Shared; do not mutate.
func (l *Labeling) Ancestors(v topology.NodeID) *bitset.Set { return l.anc[v] }

// Descendants returns the (reflexive) descendant set of v — every node in the
// tree subtree rooted at v. Shared; do not mutate.
func (l *Labeling) Descendants(v topology.NodeID) *bitset.Set { return l.desc[v] }

// SubtreeIntersects reports whether the tree subtree rooted at v contains any
// member of set. It is the word-level form of "v is an ancestor of some
// destination" and allocates nothing.
func (l *Labeling) SubtreeIntersects(v topology.NodeID, set *bitset.Set) bool {
	return l.desc[v].Intersects(set)
}

// ExtendedAncestors returns the (reflexive) extended-ancestor set of v.
func (l *Labeling) ExtendedAncestors(v topology.NodeID) *bitset.Set { return l.extAnc[v] }

// ExtendedDescendants returns the transpose view: the set of nodes v is an
// extended ancestor of. Shared; do not mutate.
func (l *Labeling) ExtendedDescendants(v topology.NodeID) *bitset.Set { return l.extDesc[v] }

// LCA returns the least (deepest) common tree ancestor of a and b.
func (l *Labeling) LCA(a, b topology.NodeID) topology.NodeID {
	for l.Level[a] > l.Level[b] {
		a = l.Parent[a]
	}
	for l.Level[b] > l.Level[a] {
		b = l.Parent[b]
	}
	for a != b {
		a, b = l.Parent[a], l.Parent[b]
	}
	return a
}

// LCAOfSet returns the deepest common tree ancestor of all given nodes. For a
// single processor destination this is the processor itself; callers that
// need a switch should take SwitchOf/Parent as appropriate. It panics on an
// empty slice.
func (l *Labeling) LCAOfSet(nodes []topology.NodeID) topology.NodeID {
	if len(nodes) == 0 {
		panic("updown: LCAOfSet of empty set")
	}
	lca := nodes[0]
	for _, v := range nodes[1:] {
		lca = l.LCA(lca, v)
	}
	return lca
}

// LCASwitch returns the LCA of the destination set as a switch: if the LCA
// is a processor (single-destination case), its attached switch is returned.
func (l *Labeling) LCASwitch(nodes []topology.NodeID) topology.NodeID {
	lca := l.LCAOfSet(nodes)
	if l.Net.IsProcessor(lca) {
		return l.Net.SwitchOf(lca)
	}
	return lca
}

// Depth returns the tree depth (level) of node v.
func (l *Labeling) Depth(v topology.NodeID) int32 { return l.Level[v] }

// Verify checks structural invariants of the labeling; it is used by tests
// and cmd/deadlockcheck:
//
//  1. every channel has exactly one class;
//  2. the up sub-network is acyclic;
//  3. the combined down sub-network (down-tree ∪ down-cross) is acyclic;
//  4. down-tree channels form the spanning tree (n-1 switch tree channels
//     plus one per processor);
//  5. ancestor implies extended ancestor;
//  6. the descendant sets are the exact transpose of the ancestor sets.
func (l *Labeling) Verify() error {
	net := l.Net
	// (2) and (3): topological order by (level, id) with direction checks.
	for i := range net.Channels {
		ch := &net.Channels[i]
		ls, ld := l.Level[ch.Src], l.Level[ch.Dst]
		switch l.ClassOf[i] {
		case Up:
			if ls < ld || (ls == ld && ch.Src < ch.Dst) {
				return fmt.Errorf("updown: up channel %d (%d->%d) does not decrease (level,id)", i, ch.Src, ch.Dst)
			}
		case DownTree, DownCross:
			if ls > ld || (ls == ld && ch.Src > ch.Dst) {
				return fmt.Errorf("updown: down channel %d (%d->%d) does not increase (level,id)", i, ch.Src, ch.Dst)
			}
		default:
			return fmt.Errorf("updown: channel %d has invalid class", i)
		}
	}
	// (4) tree structure.
	treeCount := 0
	for i := range net.Channels {
		if l.ClassOf[i] != DownTree {
			continue
		}
		ch := &net.Channels[i]
		if l.Parent[ch.Dst] == ch.Src {
			treeCount++
		}
	}
	want := net.NumSwitches - 1 + net.NumProcs
	if treeCount != want {
		return fmt.Errorf("updown: %d tree-parent channels, want %d", treeCount, want)
	}
	// (5) anc ⊆ extAnc.
	for v := 0; v < net.N(); v++ {
		if !l.extAnc[v].Contains(l.anc[v]) {
			return fmt.Errorf("updown: node %d: ancestors not contained in extended ancestors", v)
		}
	}
	// (6) desc is the exact transpose of anc, and extDesc of extAnc.
	for v := 0; v < net.N(); v++ {
		for u := 0; u < net.N(); u++ {
			if l.anc[v].Test(u) != l.desc[u].Test(v) {
				return fmt.Errorf("updown: descendant sets are not the transpose of ancestor sets at (u=%d, v=%d)", u, v)
			}
			if l.extAnc[v].Test(u) != l.extDesc[u].Test(v) {
				return fmt.Errorf("updown: extended-descendant sets are not the transpose of extended-ancestor sets at (u=%d, v=%d)", u, v)
			}
		}
	}
	return nil
}
