// Package updown implements the up*/down* network partition that SPAM builds
// on (Schroeder et al., Autonet), extended with the paper's distinction
// between down-tree and down-cross channels, ancestor and extended-ancestor
// relations, and tree least-common-ancestor queries.
//
// A root switch is chosen and a BFS spanning tree is computed. For every
// channel:
//
//   - tree channels directed toward the root are "up", away from the root
//     are "down tree";
//   - cross (non-tree) channels directed from a deeper level to a shallower
//     level are "up", from shallower to deeper are "down cross";
//   - cross channels between equal levels are "up" from the larger node ID
//     to the smaller, "down cross" otherwise.
//
// Processors are leaves of the spanning tree: processor→switch channels are
// up tree channels and switch→processor channels are down tree channels.
package updown
