package updown

import (
	"testing"

	"repro/internal/topology"
)

func fig1Labeling(t *testing.T) *Labeling {
	t.Helper()
	net, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewWithRoot(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFigure1Levels(t *testing.T) {
	l := fig1Labeling(t)
	// Root switch 0 (paper vertex 1). BFS: level0={0}, level1={1,2},
	// level2={3}, level3={4,5}; processors one deeper than their switch.
	wantLevels := map[topology.NodeID]int32{
		0: 0, 1: 1, 2: 1, 3: 2, 4: 3, 5: 3,
		6: 2,             // proc on switch 1
		7: 4, 8: 4, 9: 4, // procs on switch 4
		10: 4, // proc on switch 5
	}
	for v, want := range wantLevels {
		if l.Level[v] != want {
			t.Errorf("level[%d]=%d want %d", v, l.Level[v], want)
		}
	}
}

func TestFigure1Classification(t *testing.T) {
	l := fig1Labeling(t)
	net := l.Net
	// Tree edges from root 0: 0-1, 0-2, 2-3, 3-4, 3-5 (BFS, ascending
	// neighbor order). Cross edges: 1-2.
	classOf := func(src, dst topology.NodeID) Class {
		c := net.ChannelBetween(src, dst)
		if c == topology.None {
			t.Fatalf("no channel %d->%d", src, dst)
		}
		return l.ClassOf[c]
	}
	// Tree channels.
	for _, e := range [][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}, {3, 4}, {3, 5}} {
		if got := classOf(e[0], e[1]); got != DownTree {
			t.Errorf("channel %d->%d class %v want down-tree", e[0], e[1], got)
		}
		if got := classOf(e[1], e[0]); got != Up {
			t.Errorf("channel %d->%d class %v want up", e[1], e[0], got)
		}
	}
	// Cross edge 1-2: same level, so larger ID -> smaller is up.
	if got := classOf(2, 1); got != Up {
		t.Errorf("cross 2->1 class %v want up", got)
	}
	if got := classOf(1, 2); got != DownCross {
		t.Errorf("cross 1->2 class %v want down-cross", got)
	}
	// Processor channels.
	if got := classOf(6, 1); got != Up {
		t.Errorf("proc 6->switch 1 class %v want up", got)
	}
	if got := classOf(1, 6); got != DownTree {
		t.Errorf("switch 1->proc 6 class %v want down-tree", got)
	}
}

func TestFigure1Verify(t *testing.T) {
	if err := fig1Labeling(t).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAncestors(t *testing.T) {
	l := fig1Labeling(t)
	// Tree: 0 -> {1,2}, 2 -> 3, 3 -> {4,5}. Proc 7 on switch 4.
	cases := []struct {
		u, v topology.NodeID
		want bool
	}{
		{0, 7, true}, // root is ancestor of everything
		{2, 7, true}, // on path 0-2-3-4-7
		{3, 7, true},
		{4, 7, true},
		{7, 7, true},  // reflexive
		{1, 7, false}, // switch 1 not on the path
		{5, 7, false},
		{7, 4, false}, // not symmetric
	}
	for _, c := range cases {
		if got := l.IsAncestor(c.u, c.v); got != c.want {
			t.Errorf("IsAncestor(%d,%d)=%v want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestExtendedAncestors(t *testing.T) {
	l := fig1Labeling(t)
	// Down-cross channel 1->2 exists, so 1 is an extended ancestor of
	// everything in subtree(2) = {2,3,4,5,7,8,9,10}.
	for _, v := range []topology.NodeID{2, 3, 4, 5, 7, 8, 9, 10} {
		if !l.IsExtendedAncestor(1, v) {
			t.Errorf("1 should be extended ancestor of %d", v)
		}
	}
	// But 1 is NOT a tree ancestor of those.
	if l.IsAncestor(1, 3) {
		t.Error("1 must not be a tree ancestor of 3")
	}
	// 2 is not an extended ancestor of 6 (proc of switch 1): no down path.
	if l.IsExtendedAncestor(2, 6) {
		t.Error("2 must not be extended ancestor of 6")
	}
	// Ancestor implies extended ancestor.
	if !l.IsExtendedAncestor(0, 10) {
		t.Error("root must be extended ancestor of 10")
	}
}

func TestLCA(t *testing.T) {
	l := fig1Labeling(t)
	cases := []struct {
		a, b, want topology.NodeID
	}{
		{7, 8, 4},  // two procs on switch 4
		{7, 10, 3}, // proc on 4 and proc on 5 meet at 3
		{6, 7, 0},  // proc on 1 and proc on 4 meet at root
		{7, 7, 7},  // self
		{4, 7, 4},  // switch and its own proc
	}
	for _, c := range cases {
		if got := l.LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCAOfSetAndSwitch(t *testing.T) {
	l := fig1Labeling(t)
	// Paper's example: multicast from node 5 (our proc 6) to nodes
	// 8,9,10,11 (our procs 7,8,9,10). LCA is paper node 4 = our switch 3.
	if got := l.LCAOfSet([]topology.NodeID{7, 8, 9, 10}); got != 3 {
		t.Errorf("LCAOfSet=%d want 3", got)
	}
	// Single destination: LCA is the processor, LCASwitch its switch.
	if got := l.LCAOfSet([]topology.NodeID{7}); got != 7 {
		t.Errorf("single LCAOfSet=%d want 7", got)
	}
	if got := l.LCASwitch([]topology.NodeID{7}); got != 4 {
		t.Errorf("LCASwitch=%d want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("LCAOfSet(empty) did not panic")
		}
	}()
	l.LCAOfSet(nil)
}

func TestChildChans(t *testing.T) {
	l := fig1Labeling(t)
	// Switch 3 (paper node 4) has tree children 4 and 5 (paper 6 and 7).
	kids := map[topology.NodeID]bool{}
	for _, c := range l.ChildChans[3] {
		kids[l.Net.Chan(c).Dst] = true
	}
	if !kids[4] || !kids[5] || len(kids) != 2 {
		t.Fatalf("children of 3: %v", kids)
	}
	// Switch 4 (paper 6) has three processor children.
	if len(l.ChildChans[4]) != 3 {
		t.Fatalf("switch 4 has %d child channels", len(l.ChildChans[4]))
	}
	// ParentChan inverse consistency.
	for v := 0; v < l.Net.N(); v++ {
		if topology.NodeID(v) == l.Root {
			continue
		}
		pc := l.ParentChan[v]
		if pc == topology.None {
			t.Fatalf("node %d has no parent channel", v)
		}
		ch := l.Net.Chan(pc)
		if ch.Dst != topology.NodeID(v) || ch.Src != l.Parent[v] {
			t.Fatalf("parent chan of %d wrong: %+v", v, ch)
		}
	}
}

func TestRootStrategies(t *testing.T) {
	net, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []RootStrategy{RootMinID, RootMaxDegree, RootCenter} {
		l, err := New(net, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !net.IsSwitch(l.Root) {
			t.Fatalf("%v: root %d not a switch", s, l.Root)
		}
		if err := l.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	if l, _ := New(net, RootMinID); l.Root != 0 {
		t.Fatal("min-id root not 0")
	}
	// Max degree in fig1 is switch 3 (paper 4): links to 2,4,5 = 3... and
	// switch 2 has links to 0,1,3 = 3. Tie -> smallest ID = 2.
	if l, _ := New(net, RootMaxDegree); l.Root != 2 {
		t.Fatalf("max-degree root = %d", l.Root)
	}
	if s := RootMinID.String(); s != "min-id" {
		t.Fatalf("strategy string %q", s)
	}
}

func TestBadRoot(t *testing.T) {
	net, _ := topology.Figure1()
	if _, err := NewWithRoot(net, topology.NodeID(net.NumSwitches)); err == nil {
		t.Fatal("processor root accepted")
	}
	if _, err := NewWithRoot(net, -1); err == nil {
		t.Fatal("negative root accepted")
	}
}

func TestClassString(t *testing.T) {
	if Up.String() != "up" || DownTree.String() != "down-tree" || DownCross.String() != "down-cross" {
		t.Fatal("class strings wrong")
	}
}
