package updown

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// bruteAncestor checks u ->down-tree*-> v by walking parents from v.
func bruteAncestor(l *Labeling, u, v topology.NodeID) bool {
	for x := v; ; x = l.Parent[x] {
		if x == u {
			return true
		}
		if x < 0 || l.Parent[x] < 0 && x != u {
			return x == u
		}
		if l.Parent[x] < 0 {
			return false
		}
	}
}

// bruteExtendedAncestor does a DFS over down-cross channels from u, then
// checks tree ancestry from every reached node.
func bruteExtendedAncestor(l *Labeling, u, v topology.NodeID) bool {
	seen := map[topology.NodeID]bool{}
	stack := []topology.NodeID{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		if bruteAncestor(l, x, v) {
			return true
		}
		for _, c := range l.Net.Out(x) {
			if l.ClassOf[c] == DownCross {
				stack = append(stack, l.Net.Chan(c).Dst)
			}
		}
	}
	return false
}

func randomLabelings(t *testing.T, trials int) []*Labeling {
	t.Helper()
	var out []*Labeling
	for seed := uint64(0); int(seed) < trials; seed++ {
		n := 4 + int(seed)*7%40
		net, err := topology.RandomLattice(topology.DefaultLattice(n, seed*13+1))
		if err != nil {
			t.Fatal(err)
		}
		strategies := []RootStrategy{RootMinID, RootMaxDegree, RootCenter}
		l, err := New(net, strategies[int(seed)%3])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, l)
	}
	return out
}

// Property: Verify passes on random lattices with all root strategies.
func TestVerifyOnRandomLattices(t *testing.T) {
	for _, l := range randomLabelings(t, 20) {
		if err := l.Verify(); err != nil {
			t.Fatalf("n=%d root=%d: %v", l.Net.NumSwitches, l.Root, err)
		}
	}
}

// Property: the bitset ancestor relations agree with brute-force search.
func TestAncestorRelationsMatchBruteForce(t *testing.T) {
	r := rng.New(555)
	for _, l := range randomLabelings(t, 10) {
		total := l.Net.N()
		for trial := 0; trial < 60; trial++ {
			u := topology.NodeID(r.Intn(total))
			v := topology.NodeID(r.Intn(total))
			if got, want := l.IsAncestor(u, v), bruteAncestor(l, u, v); got != want {
				t.Fatalf("n=%d IsAncestor(%d,%d)=%v brute=%v", l.Net.NumSwitches, u, v, got, want)
			}
			if got, want := l.IsExtendedAncestor(u, v), bruteExtendedAncestor(l, u, v); got != want {
				t.Fatalf("n=%d IsExtendedAncestor(%d,%d)=%v brute=%v", l.Net.NumSwitches, u, v, got, want)
			}
		}
	}
}

// Property: LCA agrees with the brute-force "walk both up" on random pairs,
// and is an ancestor of both arguments, and no child of it is.
func TestLCAProperties(t *testing.T) {
	r := rng.New(777)
	for _, l := range randomLabelings(t, 10) {
		total := l.Net.N()
		for trial := 0; trial < 60; trial++ {
			a := topology.NodeID(r.Intn(total))
			b := topology.NodeID(r.Intn(total))
			lca := l.LCA(a, b)
			if !l.IsAncestor(lca, a) || !l.IsAncestor(lca, b) {
				t.Fatalf("LCA(%d,%d)=%d is not a common ancestor", a, b, lca)
			}
			// Deepest: no child of lca is a common ancestor.
			for _, c := range l.ChildChans[lca] {
				kid := l.Net.Chan(c).Dst
				if l.IsAncestor(kid, a) && l.IsAncestor(kid, b) {
					t.Fatalf("LCA(%d,%d)=%d not deepest: child %d works", a, b, lca, kid)
				}
			}
		}
	}
}

// Property: every up channel's reverse is a down channel and vice versa.
func TestClassReversePairing(t *testing.T) {
	for _, l := range randomLabelings(t, 10) {
		for i := range l.Net.Channels {
			ch := &l.Net.Channels[i]
			rev := l.ClassOf[ch.Reverse]
			switch l.ClassOf[i] {
			case Up:
				if rev != DownTree && rev != DownCross {
					t.Fatalf("up channel %d reverse class %v", i, rev)
				}
			case DownTree, DownCross:
				if rev != Up {
					t.Fatalf("down channel %d reverse class %v", i, rev)
				}
			}
		}
	}
}

// Property: from every switch there is a pure-up path to the root (the up
// sub-network is "rooted"): repeatedly following any up channel must be able
// to reach the root. We check the stronger statement that following the
// tree-parent up channel chain reaches the root.
func TestUpPathsReachRoot(t *testing.T) {
	for _, l := range randomLabelings(t, 10) {
		for v := 0; v < l.Net.N(); v++ {
			x := topology.NodeID(v)
			steps := 0
			for x != l.Root {
				p := l.Parent[x]
				up := l.Net.Chan(l.ParentChan[x]).Reverse
				if l.ClassOf[up] != Up {
					t.Fatalf("reverse of parent chan of %d is %v", x, l.ClassOf[up])
				}
				x = p
				if steps++; steps > l.Net.N() {
					t.Fatalf("parent chain from %d does not terminate", v)
				}
			}
		}
	}
}

// Property: extended ancestors are a superset of ancestors, and the root is
// an extended ancestor of every node.
func TestExtendedSupersetProperty(t *testing.T) {
	for _, l := range randomLabelings(t, 10) {
		for v := 0; v < l.Net.N(); v++ {
			if !l.ExtendedAncestors(topology.NodeID(v)).Contains(l.Ancestors(topology.NodeID(v))) {
				t.Fatalf("node %d: extAnc does not contain anc", v)
			}
			if !l.IsExtendedAncestor(l.Root, topology.NodeID(v)) {
				t.Fatalf("root not extended ancestor of %d", v)
			}
		}
	}
}
