package campaign

import (
	"fmt"
	"strings"

	"repro/internal/experiment"
	"repro/internal/viz"
)

// render fills Result.Report and Result.SVGs from the completed units. The
// rendering is a pure function of the result data — no timestamps, no
// environment — so a replayed campaign produces byte-identical artifacts.
func render(res *Result) {
	m := res.Manifest
	title := m.Title
	if title == "" {
		title = fmt.Sprintf("Campaign %s", m.Name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\n", title)
	fmt.Fprintf(&sb,
		"Manifest `%s`, base seed %d: %d experiment driver(s), %d grid cell(s). "+
			"Every value below is deterministic for the manifest — rerunning reproduces this file byte for byte.\n\n",
		m.Name, m.Seed, len(res.Experiments), len(res.Cells))

	if len(res.Cells) > 0 {
		sb.WriteString("## Topology zoo\n\n")
		sb.WriteString("| topology | switches | processors | links | diameter | tables (MiB) | compression |\n")
		sb.WriteString("| --- | --- | --- | --- | --- | --- | --- |\n")
		seen := map[string]bool{}
		for _, c := range res.Cells {
			key := fmt.Sprintf("%s@%d", c.Topology, c.Seed)
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&sb, "| `%s` | %d | %d | %d | %d | %.2f | %.1fx |\n",
				c.Topology, c.Switches, c.Processors, c.Links, c.Diameter,
				c.TableMB, c.TableCompression)
		}
		sb.WriteString("\n")
	}

	if len(res.Experiments) > 0 {
		sb.WriteString("## Paper experiments\n\n")
	}
	for _, er := range res.Experiments {
		fmt.Fprintf(&sb, "### %s\n\n", er.Table.Title)
		fmt.Fprintf(&sb, "Driver `%s`, seed %d.\n\n", er.Driver, er.Seed)
		if len(er.Series) > 0 {
			name := "plots/exp-" + sanitize(er.Driver) + ".svg"
			res.SVGs[name] = viz.CurveSVG(er.Table.Title, er.XLabel, er.YLabel, toCurves(er.Series))
			fmt.Fprintf(&sb, "![%s](%s)\n\n", er.Driver, name)
		}
		writeMarkdownTable(&sb, er.Table)
		sb.WriteString("\n")
	}

	// Grid sections, in manifest order.
	for gi := range m.Grids {
		g := &m.Grids[gi]
		var cells []*CellResult
		for _, c := range res.Cells {
			if c.Grid == g.Name {
				cells = append(cells, c)
			}
		}
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "## Grid: %s\n\n", g.Name)
		fmt.Fprintf(&sb, "%d cells = %d topologies x %d scenarios x %d fault profiles x %d seeds, %d trial(s) each.\n\n",
			len(cells), len(g.Topologies), len(g.Scenarios), max(1, len(g.FaultProfiles)), max(1, len(g.Seeds)), cells[0].Trials)

		name := "plots/grid-" + sanitize(g.Name) + ".svg"
		res.SVGs[name] = gridSVG(g, cells)
		fmt.Fprintf(&sb, "![%s](%s)\n\n", g.Name, name)

		sb.WriteString("| topology | scenario | faults | seed | samples | mean(us) | ci95(us) | p50(us) | p90(us) | p99(us) | max(us) | worms | flit-hops | hdr-wait | aborted |\n")
		sb.WriteString("| --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- | --- |\n")
		for _, c := range cells {
			fault := c.Fault
			if fault == "" {
				fault = "-"
			}
			// The counter columns are the engine's exact per-cell totals
			// (summed over trials): completed worms, payload flit hops,
			// header-acquisition waits, and fault-aborted worms.
			fmt.Fprintf(&sb, "| `%s` | %s | %s | %d | %d | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f | %d | %d | %d | %d |\n",
				c.Topology, c.Scenario, fault, c.Seed, c.Count,
				c.MeanUs, c.CI95Us, c.P50Us, c.P90Us, c.P99Us, c.MaxUs,
				c.Counters.WormsCompleted, c.Counters.PayloadFlitHops,
				c.Counters.HeaderAcquireWait, c.Counters.WormsAborted)
		}
		sb.WriteString("\n")
	}

	if names := sortedSVGNames(res.SVGs); len(names) > 0 {
		sb.WriteString("## Plots\n\n")
		for _, n := range names {
			fmt.Fprintf(&sb, "- [%s](%s)\n", n, n)
		}
		sb.WriteString("\n")
	}
	res.Report = sb.String()
}

// gridSVG plots a grid's cells: mean latency (with CI bars) per topology
// (x = topology index, in manifest order), one curve per (scenario, fault
// profile, seed) combination.
func gridSVG(g *Grid, cells []*CellResult) string {
	topoIdx := map[string]int{}
	for i, t := range g.Topologies {
		topoIdx[t] = i
	}
	type curveKey struct{ label string }
	var order []string
	curves := map[string]*viz.CurveSeries{}
	for _, c := range cells {
		label := c.Scenario
		if c.Fault != "" {
			label += "+" + c.Fault
		}
		label += fmt.Sprintf(" (seed %d)", c.Seed)
		cs, ok := curves[label]
		if !ok {
			cs = &viz.CurveSeries{Label: label}
			curves[label] = cs
			order = append(order, label)
		}
		cs.Points = append(cs.Points, viz.CurvePoint{
			X: float64(topoIdx[c.Topology]), Y: c.MeanUs, Err: c.CI95Us,
		})
	}
	out := make([]viz.CurveSeries, 0, len(order))
	for _, label := range order {
		out = append(out, *curves[label])
	}
	return viz.CurveSVG(
		fmt.Sprintf("Grid %s: mean latency by topology", g.Name),
		fmt.Sprintf("topology index (0=%s)", g.Topologies[0]),
		"latency (us)", out)
}

// toCurves converts experiment series to viz curves (CI as error bars).
func toCurves(series []experiment.Series) []viz.CurveSeries {
	out := make([]viz.CurveSeries, len(series))
	for i, s := range series {
		out[i].Label = s.Label
		for _, p := range s.Points {
			out[i].Points = append(out[i].Points, viz.CurvePoint{X: p.X, Y: p.Mean, Err: p.CI95})
		}
	}
	return out
}

// writeMarkdownTable renders an experiment table as GitHub-flavored
// Markdown.
func writeMarkdownTable(sb *strings.Builder, t *experiment.Table) {
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Headers))
		copy(cells, row)
		for i := range cells {
			if cells[i] == "" {
				cells[i] = "-"
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
