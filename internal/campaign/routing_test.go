package campaign

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// TestBuiltinRoutingManifest validates the adaptive-routing comparator
// manifest without running it: the three policy grids resolve to the
// intended (policy, budget) pairs through the same workload clamp the
// runners use, the routing experiment driver is registered, and the cell
// count pins the sweep's shape so a silent grid edit shows up here.
func TestBuiltinRoutingManifest(t *testing.T) {
	m, ok := Builtin("routing")
	if !ok {
		t.Fatal("no routing manifest")
	}
	if err := m.Validate(false); err != nil {
		t.Fatal(err)
	}
	if got := m.NumCells(); got != 36 {
		t.Errorf("routing manifest: %d cells, want 36 (3 policies x 6 topologies x 2 scenarios)", got)
	}
	want := map[string]struct {
		pol    core.Policy
		budget int
	}{
		"baseline":   {core.PolicyBaseline, 0},
		"misroute-2": {core.PolicyMisroute, 2},
		"duato":      {core.PolicyDuato, 0},
	}
	if len(m.Grids) != len(want) {
		t.Fatalf("routing manifest has %d grids, want %d", len(m.Grids), len(want))
	}
	for _, g := range m.Grids {
		w, ok := want[g.Name]
		if !ok {
			t.Errorf("unexpected grid %q", g.Name)
			continue
		}
		pol, budget, err := workload.RoutingPolicy(g.Params)
		if err != nil {
			t.Errorf("grid %q: %v", g.Name, err)
			continue
		}
		if pol != w.pol || budget != w.budget {
			t.Errorf("grid %q resolves to (%v, %d), want (%v, %d)", g.Name, pol, budget, w.pol, w.budget)
		}
	}
	for _, e := range m.Experiments {
		if experiment.DriverDescription(e.Driver) == "" {
			t.Errorf("experiment driver %q not registered", e.Driver)
		}
	}
	found := false
	for _, name := range BuiltinNames() {
		if name == "routing" {
			found = true
		}
	}
	if !found {
		t.Error("routing missing from BuiltinNames")
	}

	// A manifest smuggling a budget under the wrong policy must not
	// validate: the same guard the service applies per request.
	bad, _ := Builtin("routing")
	bad.Grids[2].Params.MisrouteBudget = 1 // duato grid
	err := bad.Validate(false)
	if err == nil || !strings.Contains(err.Error(), "requires routing=misroute") {
		t.Errorf("budget-on-duato manifest validated: %v", err)
	}
}

// routingSmokeManifest is the seconds-scale slice of the routing comparator:
// all three policy grids on one small irregular topology.
func routingSmokeManifest() *Manifest {
	grid := func(name string, p workload.Params) Grid {
		p.Messages = 120
		return Grid{
			Name:       name,
			Topologies: []string{"gnm:16+8"},
			Scenarios:  []string{"hotspot"},
			Trials:     1,
			Params:     p,
		}
	}
	return &Manifest{
		Name: "routing-smoke",
		Seed: 1998,
		Grids: []Grid{
			grid("baseline", workload.Params{}),
			grid("misroute-2", workload.Params{Routing: "misroute", MisrouteBudget: 2}),
			grid("duato", workload.Params{Routing: "duato"}),
		},
	}
}

// TestRoutingSmokeDeterministic runs the three-policy smoke slice at 1 and 4
// workers and demands byte-identical reports, SVGs and cell results — the
// same property CI enforces for the full builtin by diffing two REPORT.md
// runs, kept seconds-scale here.
func TestRoutingSmokeDeterministic(t *testing.T) {
	a, err := Run(context.Background(), routingSmokeManifest(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), routingSmokeManifest(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Error("routing smoke reports differ across worker counts")
	}
	if !reflect.DeepEqual(a.SVGs, b.SVGs) {
		t.Error("routing smoke SVGs differ across worker counts")
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Error("routing smoke cell results differ across worker counts")
	}
	if len(a.Cells) != 3 {
		t.Fatalf("routing smoke: %d cells, want 3", len(a.Cells))
	}
}
