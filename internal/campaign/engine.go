package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/updown"
	"repro/internal/workload"
)

// defaultWorkers sizes the campaign session pool when Options.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options parameterize a campaign run.
type Options struct {
	// Workers bounds the campaign's session pool: grid cells execute on
	// this many concurrent reusable simulators, and experiment drivers use
	// it as their internal worker bound (0 = GOMAXPROCS).
	Workers int
	// CheckpointDir enables per-cell checkpointing: every completed
	// experiment and grid cell is persisted as JSON, and a re-run (or a
	// resumed interrupted run) loads completed cells instead of
	// recomputing them. "" disables checkpointing.
	CheckpointDir string
	// Sim is the simulator configuration for grid cells (zero value =
	// sim.DefaultConfig()).
	Sim sim.Config
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// MaxTrials/MaxMessages/MaxCells clamp per-cell effort and grid size —
	// the serving layer's admission control (0 = unlimited).
	MaxTrials   int
	MaxMessages int
	MaxCells    int
	// AllowFileTopologies permits file: topology specs (CLI use only; the
	// serving layer keeps it false).
	AllowFileTopologies bool
	// CellRunner, if non-nil, computes grid cells instead of the local
	// session pool — the fleet coordinator's scatter hook. It must be
	// deterministic: the engine slots its result by cell position and
	// checkpoints it under the locally derived id, so a remote runner has
	// to return exactly what the local pool would have computed (our
	// workers do, by the pool-size-independence guarantee). Experiments
	// always run locally. Resilience — retries, fallback to local
	// execution — is the runner's responsibility; an error here fails the
	// campaign.
	CellRunner func(ctx context.Context, g Grid, cell Cell) (*CellResult, error)
	// Metrics, when wired, counts campaign progress out of band. The
	// handles are nil-safe, the engine never branches on them, and nothing
	// they observe flows into results or the report — so the report stays
	// bit-identical with metrics on or off.
	Metrics Metrics
}

// Metrics is the campaign engine's observability hook: how many cells
// entered execution, how many loaded from checkpoints, how many computed,
// and how long each computed cell took (wall clock, seconds). All fields
// are nil-safe telemetry handles; the zero value disables everything.
type Metrics struct {
	CellsStarted  *telemetry.Counter
	CellsCached   *telemetry.Counter
	CellsComputed *telemetry.Counter
	CellSeconds   *telemetry.Histogram
}

// ExperimentResult is one completed experiment driver.
type ExperimentResult struct {
	ID     string              `json:"id"`
	Driver string              `json:"driver"`
	Seed   uint64              `json:"seed"`
	Table  *experiment.Table   `json:"table"`
	Series []experiment.Series `json:"series,omitempty"`
	XLabel string              `json:"x_label,omitempty"`
	YLabel string              `json:"y_label,omitempty"`
}

// CellResult is one completed grid cell: the streaming-statistics summary
// of Trials replications of a scenario on a topology, plus the topology's
// headline shape for the report's zoo table.
type CellResult struct {
	ID string `json:"id"`
	Cell
	Switches   int     `json:"switches"`
	Processors int     `json:"processors"`
	Links      int     `json:"links"`
	Diameter   int     `json:"diameter"`
	Trials     int     `json:"trials"`
	Count      int64   `json:"count"`
	MeanUs     float64 `json:"mean_us"`
	CI95Us     float64 `json:"ci95_us"`
	MinUs      float64 `json:"min_us"`
	MaxUs      float64 `json:"max_us"`
	P50Us      float64 `json:"p50_us"`
	P90Us      float64 `json:"p90_us"`
	P99Us      float64 `json:"p99_us"`
	// TableMB and TableCompression report the cell system's compiled
	// routing-table footprint: mebibytes after structural sharing, and the
	// ratio of the dense (index + per-cell rows) structure to the
	// compressed one. The report's zoo table surfaces both.
	TableMB          float64 `json:"table_mb"`
	TableCompression float64 `json:"table_compression_x"`
	// Counters aggregates the engine counters over the cell's trials —
	// deterministic exact sums, checkpointed with the cell and surfaced as
	// REPORT.md columns.
	Counters sim.Counters `json:"counters"`
}

// Result is a completed campaign.
type Result struct {
	Manifest    *Manifest
	Experiments []*ExperimentResult
	Cells       []*CellResult
	// Computed and Cached count how many units ran versus loaded from
	// checkpoints.
	Computed int
	Cached   int
	// Report is the rendered REPORT.md content.
	Report string
	// SVGs maps relative plot paths (e.g. "plots/exp-fig2.svg") to their
	// rendered content.
	SVGs map[string]string
}

func driverNames() []string { return experiment.Drivers() }

func driverProbe(name string) (string, error) {
	if desc := experiment.DriverDescription(name); desc != "" {
		return desc, nil
	}
	return "", fmt.Errorf("campaign: unknown experiment driver %q (have %v)", name, experiment.Drivers())
}

// checkpoint is the on-disk unit: exactly one of Experiment or Cell.
type checkpoint struct {
	Version    int               `json:"version"`
	Experiment *ExperimentResult `json:"experiment,omitempty"`
	Cell       *CellResult       `json:"cell,omitempty"`
}

const checkpointVersion = 1

// cellID derives the stable checkpoint identity of a unit from its complete
// parameterization: any change to the spec changes the ID, so stale
// checkpoints are never reused.
func cellID(kind, name string, spec any) string {
	blob, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("campaign: marshaling spec for id: %v", err))
	}
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(blob)
	return fmt.Sprintf("%s-%s-%016x", kind, sanitize(name), h.Sum64())
}

// loadCheckpoint returns the stored unit for id, or nil. A missing,
// truncated, corrupt or mislabeled file is treated as "this unit was never
// computed": the cell recomputes (deterministically, so the output is
// unchanged) instead of the whole campaign failing on a half-written
// checkpoint left by a crash.
func loadCheckpoint(dir, id string) *checkpoint {
	if dir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		return nil
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil || cp.Version != checkpointVersion {
		return nil
	}
	// The embedded id must match the file's name-derived id: a checkpoint
	// copied or renamed across cells (or a hash-colliding stale file) must
	// not impersonate a different unit.
	if cp.Experiment != nil && cp.Experiment.ID != id {
		return nil
	}
	if cp.Cell != nil && cp.Cell.ID != id {
		return nil
	}
	return &cp
}

// saveCheckpoint persists a completed unit crash-safely: the JSON is
// written to a temp file and renamed into place, so a crash mid-write
// leaves either the old checkpoint or none — never a truncated one a
// resume would have to distrust (loadCheckpoint rejects those anyway as a
// second line of defense). Write errors are surfaced: a checkpointed
// campaign that cannot checkpoint should fail loudly rather than silently
// recompute forever.
func saveCheckpoint(dir, id string, cp checkpoint) error {
	if dir == "" {
		return nil
	}
	cp.Version = checkpointVersion
	blob, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, id+".json.tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, id+".json"))
}

// expSpec is the checkpoint identity of an experiment unit.
type expSpec struct {
	Driver   string `json:"driver"`
	Trials   int    `json:"trials"`
	Messages int    `json:"messages"`
	Seed     uint64 `json:"seed"`
}

// cellSpec is the checkpoint identity of a grid cell: the cell coordinates
// plus every grid knob that shapes its measurement.
type cellSpec struct {
	Cell   Cell            `json:"cell"`
	Trials int             `json:"trials"`
	Warmup int             `json:"warmup"`
	Params workload.Params `json:"params"`
}

// Run executes the manifest. Determinism: for a fixed (manifest, Options
// clamps) pair the Result — report bytes, SVG bytes, every float — is
// bit-identical on every run, for any Workers value, whether a unit was
// computed or loaded from a checkpoint. Interrupting a run (context cancel,
// crash) loses at most the in-flight cells; completed cells are already
// checkpointed and a re-run resumes after them.
func Run(ctx context.Context, m *Manifest, opts Options) (*Result, error) {
	if err := m.Validate(opts.AllowFileTopologies); err != nil {
		return nil, err
	}
	if opts.Sim.Params.MessageFlits == 0 {
		opts.Sim = sim.DefaultConfig()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
	}

	cells := m.cells()
	if opts.MaxCells > 0 && len(cells) > opts.MaxCells {
		return nil, fmt.Errorf("campaign: manifest expands to %d cells, limit %d", len(cells), opts.MaxCells)
	}

	res := &Result{Manifest: m, SVGs: map[string]string{}}

	// Experiments run sequentially; each driver parallelizes internally
	// over opts.Workers.
	for _, e := range m.Experiments {
		e := e
		seed := e.Seed
		if seed == 0 {
			seed = m.Seed
		}
		spec := expSpec{Driver: e.Driver, Trials: e.Trials, Messages: e.Messages, Seed: seed}
		id := cellID("exp", e.Driver, spec)
		if cp := loadCheckpoint(opts.CheckpointDir, id); cp != nil && cp.Experiment != nil {
			logf("campaign: experiment %s: checkpoint hit", e.Driver)
			res.Experiments = append(res.Experiments, cp.Experiment)
			res.Cached++
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		logf("campaign: experiment %s: running", e.Driver)
		dr, err := experiment.RunDriver(e.Driver, experiment.DriverOpts{
			Trials:   e.Trials,
			Messages: e.Messages,
			Workers:  opts.Workers,
			Seed:     seed,
			Sim:      opts.Sim,
		})
		if err != nil {
			return nil, err
		}
		er := &ExperimentResult{
			ID: id, Driver: e.Driver, Seed: seed,
			Table: dr.Table, Series: sanitizeSeries(dr.Series),
			XLabel: dr.XLabel, YLabel: dr.YLabel,
		}
		if err := saveCheckpoint(opts.CheckpointDir, id, checkpoint{Experiment: er}); err != nil {
			return nil, fmt.Errorf("campaign: checkpointing %s: %w", id, err)
		}
		res.Experiments = append(res.Experiments, er)
		res.Computed++
	}

	// Grid cells execute on the campaign session pool: Workers goroutines,
	// each owning a cache of reusable simulators keyed by (topology, seed).
	// Results land in their cell's slot, so output order — and therefore
	// the report — is independent of scheduling.
	cellResults := make([]*CellResult, len(cells))
	cellErrs := make([]error, len(cells))
	var cached, computed int
	var mu sync.Mutex // systems cache + counters

	type sysKey struct {
		topo    string
		seed    uint64
		routing core.Policy
		root    updown.RootStrategy
	}
	systems := map[sysKey]*systemParts{}
	systemFor := func(topo string, seed uint64, pol core.Policy, root updown.RootStrategy) (*systemParts, error) {
		k := sysKey{topo, seed, pol, root}
		mu.Lock()
		if s, ok := systems[k]; ok {
			mu.Unlock()
			return s, nil
		}
		mu.Unlock()
		// Build outside the lock so workers on cached topologies never
		// wait behind a slow build; construction is deterministic, so a
		// concurrent duplicate is identical and the loser is dropped.
		s, err := buildSystem(topo, seed, pol, root)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if cached, ok := systems[k]; ok {
			return cached, nil
		}
		systems[k] = s
		return s, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	// gridStart anchors the ETA estimate. Wall-clock readings flow only
	// into Logf lines and telemetry — never into results or the report.
	gridStart := time.Now()
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runners := map[runnerKey]*workload.Runner{}
			for i := range next {
				cell := cells[i]
				g := m.grid(cell.Grid)
				spec := cellSpecFor(g, cell, opts)
				id := cellID("cell", cell.Grid+"-"+cell.Scenario, spec)
				if cp := loadCheckpoint(opts.CheckpointDir, id); cp != nil && cp.Cell != nil {
					opts.Metrics.CellsCached.Inc()
					cellResults[i] = cp.Cell
					mu.Lock()
					cached++
					mu.Unlock()
					continue
				}
				if ctx.Err() != nil {
					cellErrs[i] = ctx.Err()
					continue
				}
				opts.Metrics.CellsStarted.Inc()
				cellStart := time.Now()
				var cr *CellResult
				var err error
				if opts.CellRunner != nil {
					cr, err = opts.CellRunner(ctx, *g, cell)
					if err == nil && cr.Cell != cell {
						err = fmt.Errorf("cell runner returned result for %s", cr.Cell)
					}
					if err == nil {
						// The checkpoint identity is coordinator-derived;
						// a remote worker's id (equal under the fleet's
						// matched-config contract) is not trusted.
						c := *cr
						c.ID = id
						cr = &c
					}
				} else {
					cr, err = runCell(cell, spec, id, opts, systemFor, runners)
				}
				if err != nil {
					cellErrs[i] = fmt.Errorf("campaign: cell %s: %w", cell, err)
					continue
				}
				if err := saveCheckpoint(opts.CheckpointDir, id, checkpoint{Cell: cr}); err != nil {
					cellErrs[i] = fmt.Errorf("campaign: checkpointing %s: %w", id, err)
					continue
				}
				cellResults[i] = cr
				cellDur := time.Since(cellStart)
				opts.Metrics.CellsComputed.Inc()
				opts.Metrics.CellSeconds.Observe(cellDur.Seconds())
				mu.Lock()
				computed++
				done := cached + computed
				nComputed := computed
				mu.Unlock()
				// ETA from the mean computed-cell pace so far; checkpoint
				// hits are effectively free and excluded from the rate.
				eta := time.Since(gridStart) / time.Duration(nComputed) *
					time.Duration(len(cells)-done)
				logf("campaign: cell %s done in %.1fs (%d/%d cells, ETA %s)",
					cell, cellDur.Seconds(), done, len(cells), eta.Round(time.Second))
			}
		}()
	}
	for i := range cells {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range cellErrs {
		if err != nil {
			return nil, err
		}
	}
	res.Cells = cellResults
	res.Cached += cached
	res.Computed += computed

	render(res)
	return res, nil
}

// RunSingleCell measures exactly one grid cell — the worker half of the
// fleet scatter: a coordinator ships (grid, cell) over the wire, the worker
// computes the cell with its own clamps and returns the CellResult. It is a
// pure function of (grid, cell, Options clamps, Options.Sim), so any worker
// with matching configuration returns bit-identical floats to a local run;
// Options.Workers, checkpointing and CellRunner are ignored.
func RunSingleCell(ctx context.Context, g Grid, cell Cell, opts Options) (*CellResult, error) {
	if cell.Grid != g.Name {
		return nil, fmt.Errorf("campaign: cell %s does not belong to grid %q", cell, g.Name)
	}
	sp, err := topology.ParseSpec(cell.Topology)
	if err != nil {
		return nil, err
	}
	if sp.Family == "file" && !opts.AllowFileTopologies {
		return nil, fmt.Errorf("campaign: file topology %q not allowed here", cell.Topology)
	}
	if opts.Sim.Params.MessageFlits == 0 {
		opts.Sim = sim.DefaultConfig()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := cellSpecFor(&g, cell, opts)
	id := cellID("cell", cell.Grid+"-"+cell.Scenario, spec)
	runners := map[runnerKey]*workload.Runner{}
	return runCell(cell, spec, id, opts, buildSystem, runners)
}

// cellSpecFor resolves the complete checkpoint identity of a cell,
// including the Options clamps (a clamp change must invalidate checkpoints).
func cellSpecFor(g *Grid, cell Cell, opts Options) cellSpec {
	trials := g.Trials
	if trials <= 0 {
		trials = 3
	}
	if opts.MaxTrials > 0 && trials > opts.MaxTrials {
		trials = opts.MaxTrials
	}
	params := g.Params
	// Clamp the message budget only downward: resolve the scenario default
	// first (an omitted "messages" must fall to the registry default, not
	// to the operator cap — the cap is a ceiling, never a default; the
	// serve /run path does the same).
	if opts.MaxMessages > 0 {
		if sc, ok := workload.Lookup(cell.Scenario); ok && workload.Budget(sc.New(params), 0) > opts.MaxMessages {
			params.Messages = opts.MaxMessages
		}
	}
	// The grid's fault-profile axis is authoritative: cell.Fault overrides
	// (or clears) any profile smuggled in via Params, so the report's
	// faults column always matches what ran.
	params.FaultProfile = cell.Fault
	if cell.Fault != "" && params.FaultSeed == 0 {
		params.FaultSeed = cell.Seed ^ 0xfa17
	}
	return cellSpec{Cell: cell, Trials: trials, Warmup: g.WarmupMessages, Params: params}
}

// systemParts bundles one built topology with its labeling and router —
// immutable and shared by every runner that simulates it.
type systemParts struct {
	net    *topology.Network
	router *core.Router
}

func buildSystem(topoSpec string, seed uint64, pol core.Policy, root updown.RootStrategy) (*systemParts, error) {
	sp, err := topology.ParseSpec(topoSpec)
	if err != nil {
		return nil, err
	}
	net, err := sp.Build(seed)
	if err != nil {
		return nil, err
	}
	lab, err := updown.New(net, root)
	if err != nil {
		return nil, err
	}
	return &systemParts{net: net, router: core.NewRouterPolicy(lab, pol)}, nil
}

// runnerKey caches one reusable simulator per (system, misroute budget): the
// budget lives in the simulator configuration, so two grids sharing a system
// but differing in budget must not share a runner.
type runnerKey struct {
	sys    *systemParts
	budget int
}

// runCell measures one grid cell on the worker's reusable simulator for the
// cell's topology.
func runCell(cell Cell, spec cellSpec, id string, opts Options,
	systemFor func(string, uint64, core.Policy, updown.RootStrategy) (*systemParts, error),
	runners map[runnerKey]*workload.Runner) (*CellResult, error) {

	// The routing-policy and root axes ride the grid Params (validated by
	// Manifest.Validate; RunSingleCell re-resolves them here so a fleet
	// worker builds the same system as a local pool).
	pol, budget, err := workload.RoutingPolicy(spec.Params)
	if err != nil {
		return nil, err
	}
	root, _, err := workload.RootStrategy(spec.Params)
	if err != nil {
		return nil, err
	}
	sys, err := systemFor(cell.Topology, cell.Seed, pol, root)
	if err != nil {
		return nil, err
	}
	rk := runnerKey{sys: sys, budget: budget}
	r, ok := runners[rk]
	if !ok {
		cfg := opts.Sim
		cfg.MisrouteBudget = budget
		r, err = workload.NewRunner(sys.router, cfg)
		if err != nil {
			return nil, err
		}
		runners[rk] = r
	}
	sc, ok := workload.Lookup(cell.Scenario)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q", cell.Scenario)
	}
	// A grid shares one Params across topologies of very different sizes;
	// clamp the fan-out knobs to what each network can express. The clamp
	// is a pure function of the cell, so determinism is unaffected.
	params := workload.ClampFanOut(spec.Params, sys.net.NumProcs)
	w, err := workload.ApplyFaults(sc.New(params), params)
	if err != nil {
		return nil, err
	}
	warmup := spec.Warmup
	if warmup == 0 {
		warmup = workload.Budget(w, sys.net.NumProcs) / 10
	}
	st, err := workload.Measure(r, w, workload.MeasureOpts{
		Trials:         spec.Trials,
		WarmupMessages: warmup,
		Seed:           cell.Seed,
	})
	if err != nil {
		return nil, err
	}
	counters := r.Counters()
	ts := topology.ComputeStats(sys.net)
	ms := sys.router.TableMemStats()
	return &CellResult{
		ID:         id,
		Cell:       cell,
		Switches:   ts.Switches,
		Processors: ts.Processors,
		Links:      ts.SwitchLinks,
		Diameter:   ts.SwitchGraphDiameter,
		Trials:     spec.Trials,
		Count:      st.Count(),
		MeanUs:     st.Mean(),
		CI95Us:     finiteOrZero(st.CI95()),
		MinUs:      st.Min(),
		MaxUs:      st.Max(),
		P50Us:      st.Quantile(0.50),
		P90Us:      st.Quantile(0.90),
		P99Us:      st.Quantile(0.99),

		TableMB:          float64(ms.TableBytes) / (1 << 20),
		TableCompression: ms.CompressionX,
		Counters:         counters,
	}, nil
}

// sanitizeSeries maps non-finite point values (the +Inf "CI unknown"
// sentinel, NaN means of empty points) to 0 so experiment results survive
// JSON checkpointing. It runs before rendering AND checkpointing, so a
// replayed report is bit-identical to a computed one.
func sanitizeSeries(series []experiment.Series) []experiment.Series {
	for si := range series {
		for pi := range series[si].Points {
			p := &series[si].Points[pi]
			p.X = finiteOrZero(p.X)
			p.Mean = finiteOrZero(p.Mean)
			p.CI95 = finiteOrZero(p.CI95)
		}
	}
	return series
}

// finiteOrZero maps the +Inf "CI unknown" sentinel to 0 so results survive
// JSON checkpointing.
func finiteOrZero(v float64) float64 {
	if v != v || v > 1e300 || v < -1e300 {
		return 0
	}
	return v
}

// sortedSVGNames returns the plot names in deterministic order.
func sortedSVGNames(svgs map[string]string) []string {
	out := make([]string, 0, len(svgs))
	for name := range svgs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
