package campaign

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testManifest is a seconds-scale manifest exercising both unit kinds.
func testManifest() *Manifest {
	return &Manifest{
		Name: "test",
		Seed: 11,
		Experiments: []Experiment{
			{Driver: "hotspot", Trials: 2},
		},
		Grids: []Grid{{
			Name:       "zoo",
			Topologies: []string{"fattree:2x3", "torus:4x4"},
			Scenarios:  []string{"mixed"},
			Trials:     1,
			Params:     workload.Params{Messages: 120},
		}},
	}
}

func TestRunSmokeManifest(t *testing.T) {
	m, ok := Builtin("smoke")
	if !ok {
		t.Fatal("no smoke manifest")
	}
	res, err := Run(context.Background(), m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != len(m.Experiments) || len(res.Cells) != 2 {
		t.Fatalf("got %d experiments, %d cells", len(res.Experiments), len(res.Cells))
	}
	if res.Cached != 0 || res.Computed != len(res.Experiments)+len(res.Cells) {
		t.Errorf("computed=%d cached=%d", res.Computed, res.Cached)
	}
	for _, want := range []string{"# Campaign smoke", "## Topology zoo", "`fattree:2x3`", "## Grid: zoo-smoke", "plots/"} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(res.SVGs) == 0 {
		t.Error("no SVGs rendered")
	}
	for name, svg := range res.SVGs {
		if !strings.Contains(svg, "</svg>") {
			t.Errorf("SVG %s unterminated", name)
		}
		if !strings.Contains(res.Report, "("+name+")") {
			t.Errorf("report does not reference %s", name)
		}
	}
}

// TestRunDeterministic pins the bit-identical-replay guarantee: same
// manifest, same Options clamps, different worker counts — identical report
// and SVG bytes.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), testManifest(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), testManifest(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Error("reports differ across worker counts")
	}
	if !reflect.DeepEqual(a.SVGs, b.SVGs) {
		t.Error("SVGs differ across worker counts")
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Error("cell results differ across worker counts")
	}
}

// TestCheckpointResume pins the resume semantics: a re-run over an intact
// checkpoint dir recomputes nothing; deleting one cell's checkpoint
// recomputes exactly that cell; outputs are bit-identical throughout.
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, CheckpointDir: dir}

	first, err := Run(context.Background(), testManifest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	units := len(first.Experiments) + len(first.Cells)
	if first.Computed != units || first.Cached != 0 {
		t.Fatalf("first run: computed=%d cached=%d want %d/0", first.Computed, first.Cached, units)
	}

	second, err := Run(context.Background(), testManifest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Computed != 0 || second.Cached != units {
		t.Errorf("second run: computed=%d cached=%d want 0/%d", second.Computed, second.Cached, units)
	}
	if second.Report != first.Report || !reflect.DeepEqual(second.SVGs, first.SVGs) {
		t.Error("cached replay is not bit-identical")
	}

	// Simulate an interrupted run: one cell's checkpoint is missing.
	var victim string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cell-") {
			victim = e.Name()
			break
		}
	}
	if victim == "" {
		t.Fatal("no cell checkpoint written")
	}
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	third, err := Run(context.Background(), testManifest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Computed != 1 || third.Cached != units-1 {
		t.Errorf("resume: computed=%d cached=%d want 1/%d", third.Computed, third.Cached, units-1)
	}
	if third.Report != first.Report {
		t.Error("resumed run is not bit-identical")
	}
	if _, err := os.Stat(filepath.Join(dir, victim)); err != nil {
		t.Error("recomputed cell not re-checkpointed")
	}
}

// TestCheckpointInvalidation: changing a knob that shapes the measurement
// must miss the old checkpoints.
func TestCheckpointInvalidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), testManifest(), Options{Workers: 2, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	m := testManifest()
	m.Grids[0].Params.Messages = 150
	res, err := Run(context.Background(), m, Options{Workers: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Cells); res.Computed != got {
		t.Errorf("changed grid params: computed=%d want %d cells recomputed", res.Computed, got)
	}
}

// TestSanitizeSeries: non-finite driver outputs (the +Inf "CI unknown"
// sentinel) must be mapped out before checkpointing, or JSON marshaling of
// the checkpoint fails mid-campaign.
func TestSanitizeSeries(t *testing.T) {
	inf := math.Inf(1)
	s := sanitizeSeries([]experiment.Series{{
		Label:  "x",
		Points: []experiment.Point{{X: 1, Mean: inf, CI95: inf}, {X: 2, Mean: math.NaN(), CI95: 0.5}},
	}})
	blob, err := json.Marshal(checkpoint{Experiment: &ExperimentResult{Series: s}})
	if err != nil {
		t.Fatalf("sanitized series still unmarshalable: %v", err)
	}
	if !strings.Contains(string(blob), `"Mean":0`) {
		t.Error("Inf/NaN not mapped to 0")
	}
	if s[0].Points[1].CI95 != 0.5 {
		t.Error("finite values must pass through")
	}
}

// TestCellSpecClamps: the MaxMessages admission cap is a ceiling, never a
// default — an omitted budget falls to the scenario default; only budgets
// above the cap clamp. The grid's fault axis is authoritative over any
// profile smuggled through Params.
func TestCellSpecClamps(t *testing.T) {
	g := &Grid{Name: "g", Scenarios: []string{"mixed"}}
	cell := Cell{Grid: "g", Scenario: "mixed", Seed: 3}

	spec := cellSpecFor(g, cell, Options{MaxMessages: 20000})
	if spec.Params.Messages != 0 {
		t.Errorf("omitted budget became %d; cap must not act as default", spec.Params.Messages)
	}
	g.Params.Messages = 50000
	if spec = cellSpecFor(g, cell, Options{MaxMessages: 20000}); spec.Params.Messages != 20000 {
		t.Errorf("oversize budget not clamped: %d", spec.Params.Messages)
	}
	g.Params.Messages = 500
	if spec = cellSpecFor(g, cell, Options{MaxMessages: 20000}); spec.Params.Messages != 500 {
		t.Errorf("in-cap budget rewritten to %d", spec.Params.Messages)
	}

	g.Params.FaultProfile = "poisson"
	if spec = cellSpecFor(g, cell, Options{}); spec.Params.FaultProfile != "" {
		t.Error("fault-free cell kept a smuggled profile")
	}
	// When the axis is empty, cells() carries the Params profile into the
	// cell coordinate, so it both validates and labels correctly.
	m := &Manifest{Name: "m", Seed: 1, Grids: []Grid{{
		Name: "g", Topologies: []string{"torus:4x4"}, Scenarios: []string{"mixed"},
		Params: workload.Params{FaultProfile: "poisson"},
	}}}
	cs := m.cells()
	if len(cs) != 1 || cs[0].Fault != "poisson" {
		t.Errorf("params-level profile not promoted to cell coordinate: %+v", cs)
	}
	m.Grids[0].Params.FaultDrain = "sideways"
	if err := m.Validate(false); err == nil {
		t.Error("invalid params-level fault configuration escaped validation")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m *Manifest)
	}{
		{"no name", func(m *Manifest) { m.Name = "" }},
		{"empty", func(m *Manifest) { m.Experiments = nil; m.Grids = nil }},
		{"bad driver", func(m *Manifest) { m.Experiments[0].Driver = "fig99" }},
		{"bad topology", func(m *Manifest) { m.Grids[0].Topologies = []string{"ring:9"} }},
		{"bad scenario", func(m *Manifest) { m.Grids[0].Scenarios = []string{"nope"} }},
		{"bad fault profile", func(m *Manifest) { m.Grids[0].FaultProfiles = []string{"gremlins"} }},
		{"file topology disallowed", func(m *Manifest) { m.Grids[0].Topologies = []string{"file:/etc/passwd"} }},
		{"dup grid", func(m *Manifest) { m.Grids = append(m.Grids, m.Grids[0]) }},
	}
	for _, c := range cases {
		m := testManifest()
		c.mut(m)
		if err := m.Validate(false); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
	if err := testManifest().Validate(false); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","sede":1}`)); err == nil {
		t.Error("typo field accepted")
	}
	m, err := Parse([]byte(`{"name":"x","seed":3,"grids":[{"name":"g","topologies":["torus:4x4"],"scenarios":["mixed"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 3 || len(m.Grids) != 1 {
		t.Error("parse dropped fields")
	}
}

func TestMaxCellsClamp(t *testing.T) {
	m := testManifest()
	if _, err := Run(context.Background(), m, Options{MaxCells: 1}); err == nil {
		t.Error("MaxCells not enforced")
	}
}

func TestBuiltinPaperCoversEveryDriver(t *testing.T) {
	m, ok := Builtin("paper")
	if !ok {
		t.Fatal("no paper manifest")
	}
	if err := m.Validate(false); err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, e := range m.Experiments {
		have[e.Driver] = true
	}
	for _, d := range driverNames() {
		if !have[d] {
			t.Errorf("paper manifest misses driver %s", d)
		}
	}
	zoo := map[string]bool{}
	for _, tspec := range m.Grids[0].Topologies {
		fam := strings.SplitN(tspec, ":", 2)[0]
		zoo[fam] = true
	}
	for _, fam := range []string{"lattice", "gnm", "mesh", "torus", "hypercube", "fattree"} {
		if !zoo[fam] {
			t.Errorf("paper zoo misses family %s", fam)
		}
	}
}

// TestMangledCheckpointRecomputes: a crash can leave a checkpoint file
// truncated or corrupt. Resume must treat any unreadable cell as "never
// computed" — recompute it (bit-identically) instead of failing the whole
// campaign, and replace the damaged file.
func TestMangledCheckpointRecomputes(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, CheckpointDir: dir}
	first, err := Run(context.Background(), testManifest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	units := len(first.Experiments) + len(first.Cells)

	var cellFiles []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cell-") {
			cellFiles = append(cellFiles, e.Name())
		}
	}
	if len(cellFiles) < 2 {
		t.Fatalf("need 2 cell checkpoints, have %d", len(cellFiles))
	}

	mangle := []struct {
		name string
		do   func(path string) error
	}{
		{"truncated", func(path string) error {
			blob, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, blob[:len(blob)/2], 0o644)
		}},
		{"garbage", func(path string) error {
			return os.WriteFile(path, []byte("not json at all\x00\x7f"), 0o644)
		}},
		{"empty", func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		}},
		{"wrong-id", func(path string) error {
			// Valid JSON, valid version — but it is another cell's
			// checkpoint copied over this one. The embedded id mismatch
			// must reject it, or the campaign would report one cell's
			// numbers under another cell's coordinates.
			other, err := os.ReadFile(filepath.Join(dir, cellFiles[1]))
			if err != nil {
				return err
			}
			return os.WriteFile(path, other, 0o644)
		}},
	}
	for _, mg := range mangle {
		t.Run(mg.name, func(t *testing.T) {
			victim := filepath.Join(dir, cellFiles[0])
			if err := mg.do(victim); err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), testManifest(), opts)
			if err != nil {
				t.Fatalf("campaign failed on a mangled checkpoint: %v", err)
			}
			if res.Computed != 1 || res.Cached != units-1 {
				t.Errorf("computed=%d cached=%d, want 1/%d", res.Computed, res.Cached, units-1)
			}
			if res.Report != first.Report {
				t.Error("recovered run is not bit-identical")
			}
		})
	}
}

// TestRunSingleCellMatchesEngine: the fleet worker entry point must return
// exactly what the engine's local pool computes for the same cell.
func TestRunSingleCellMatchesEngine(t *testing.T) {
	m := testManifest()
	m.Experiments = nil
	opts := Options{Workers: 2}
	res, err := Run(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range res.Cells {
		got, err := RunSingleCell(context.Background(), m.Grids[0], want.Cell, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("single-cell run diverged:\n got %+v\nwant %+v", got, want)
		}
	}
	// Guard rails: foreign grid, file topology.
	if _, err := RunSingleCell(context.Background(), Grid{Name: "other"}, res.Cells[0].Cell, opts); err == nil {
		t.Fatal("cell from a different grid accepted")
	}
	fileCell := Cell{Grid: "zoo", Topology: "file:/etc/passwd", Scenario: "mixed"}
	if _, err := RunSingleCell(context.Background(), m.Grids[0], fileCell, opts); err == nil {
		t.Fatal("file topology accepted without AllowFileTopologies")
	}
}

// TestBuiltinCollectivesManifest validates the collective-communication
// sweep: every cell must pass registry/topology validation and the
// expansion must stay within the shared admission cap.
func TestBuiltinCollectivesManifest(t *testing.T) {
	m, ok := Builtin("collectives")
	if !ok {
		t.Fatal("no collectives manifest")
	}
	if err := m.Validate(false); err != nil {
		t.Fatal(err)
	}
	if got := m.NumCells(); got != 24 {
		t.Errorf("collectives manifest: %d cells, want 24", got)
	}
	for _, name := range BuiltinNames() {
		if name == "collectives" {
			return
		}
	}
	t.Error("collectives missing from BuiltinNames")
}

// TestBuiltinScaleManifest validates the large-network manifest without
// running it (its cells compile 16k- and 62500-switch fat-trees): every
// builtin must validate, and the headline 62500-switch cell must sit inside
// the shared admission cap so serving layers accept it.
func TestBuiltinScaleManifest(t *testing.T) {
	m, ok := Builtin("scale")
	if !ok {
		t.Fatal("no scale manifest")
	}
	if err := m.Validate(false); err != nil {
		t.Fatal(err)
	}
	if got := m.NumCells(); got != 3 {
		t.Errorf("scale manifest: %d cells, want 3", got)
	}
	maxSwitches := 0
	for _, tspec := range m.Grids[0].Topologies {
		sp, err := topology.ParseSpec(tspec)
		if err != nil {
			t.Fatal(err)
		}
		if n := sp.Switches(); n > maxSwitches {
			maxSwitches = n
		}
	}
	if maxSwitches <= 16384 {
		t.Errorf("scale manifest tops out at %d switches; want a past-16k headline cell", maxSwitches)
	}
	if maxSwitches > topology.MaxAdmittedSwitches {
		t.Errorf("scale manifest cell (%d switches) exceeds the admission cap %d",
			maxSwitches, topology.MaxAdmittedSwitches)
	}
}
