// Package campaign is the manifest-driven reproduction engine: a single
// entry point that runs a declarative experiment campaign — experiment
// drivers × topology families × workload scenarios × fault profiles ×
// seeds — and renders a deterministic REPORT.md plus SVG plots.
//
// A Manifest lists two kinds of units:
//
//   - Experiments: named figure/table drivers from the experiment registry
//     (fig2, fig3, compare, the ablations, ...). The built-in "paper"
//     manifest names every registered driver, so one command regenerates
//     everything the repository reproduces.
//   - Grids: cross-product sweeps of topology specs (the topology zoo:
//     lattice, gnm, mesh, torus, hypercube, fattree, adjacency files) ×
//     scenario registry names × fault profiles × seeds, measured with the
//     workload engine's warmup + batch-means harness.
//
// Execution. Grid cells run on the campaign's session pool: Workers
// goroutines, each owning reusable simulators keyed by topology (the same
// architecture as the experiment harness's per-goroutine sim caches).
// Results land in per-cell slots and render in manifest order, so the
// artifacts are independent of scheduling.
//
// Checkpointing. With Options.CheckpointDir set, every completed unit
// persists as a JSON file keyed by a hash of its complete parameterization.
// A re-run loads completed units instead of recomputing them; an
// interrupted run resumes where it stopped; a changed knob changes the key
// and recomputes. Checkpointed floats round-trip exactly (encoding/json
// shortest-form float64), so a replayed campaign is bit-identical to a
// computed one.
//
// Determinism. For a fixed (manifest, clamps) pair the report bytes, the
// SVG bytes and every numeric value are identical on every run, for any
// worker count — the same merge-in-trial-order discipline the serve layer
// pins with its golden tests, plus viz.CurveSVG's byte-deterministic
// rendering.
package campaign
