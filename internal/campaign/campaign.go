package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/topology"
	"repro/internal/workload"
)

// Manifest is the declarative description of a reproduction campaign: a set
// of named experiment drivers (the paper's figures and tables) plus grids of
// (topology family × workload scenario × fault profile × seed) cells. A
// (manifest, seed) pair replays bit-identically; see Run.
type Manifest struct {
	// Name identifies the campaign (used in report headers and checkpoint
	// file names).
	Name string `json:"name"`
	// Title overrides the report title (default: derived from Name).
	Title string `json:"title,omitempty"`
	// Seed is the campaign base seed; experiment and grid entries without
	// their own seed derive from it.
	Seed uint64 `json:"seed"`
	// Experiments lists figure/table drivers to regenerate.
	Experiments []Experiment `json:"experiments,omitempty"`
	// Grids lists scenario grids to sweep.
	Grids []Grid `json:"grids,omitempty"`
}

// Experiment names one figure/table driver of the paper reproduction (see
// experiment.Drivers) with its sampling effort.
type Experiment struct {
	// Driver is a name from the experiment driver registry (fig2, fig3,
	// compare, ...).
	Driver string `json:"driver"`
	// Trials is samples per data point (0 = driver default).
	Trials int `json:"trials,omitempty"`
	// Messages is the per-point message budget (0 = driver default).
	Messages int `json:"messages,omitempty"`
	// Seed overrides the manifest seed for this experiment (0 = inherit).
	Seed uint64 `json:"seed,omitempty"`
}

// Grid is a cross-product sweep: every topology × scenario × fault profile
// × seed combination becomes one cell, measured with the workload engine's
// warmup + batch-means harness.
type Grid struct {
	// Name identifies the grid in the report.
	Name string `json:"name"`
	// Topologies are topology spec strings (see topology.ParseSpec), e.g.
	// "lattice:64", "torus:8x8", "fattree:4x3".
	Topologies []string `json:"topologies"`
	// Scenarios are workload registry names (see workload.Scenarios).
	Scenarios []string `json:"scenarios"`
	// FaultProfiles compose each scenario with a fault timeline: "" (none),
	// "poisson", "maintenance" or "regional". Default: [""].
	FaultProfiles []string `json:"fault_profiles,omitempty"`
	// Seeds lists workload seeds (default: [manifest seed]). Random
	// topology families also consume the cell seed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Trials is the replication count per cell (default 3).
	Trials int `json:"trials,omitempty"`
	// WarmupMessages are excluded per trial (0 = a tenth of the budget).
	WarmupMessages int `json:"warmup_messages,omitempty"`
	// Params are the shared scenario knobs of every cell in the grid.
	Params workload.Params `json:"params,omitempty"`
}

// Cell identifies one grid cell.
type Cell struct {
	Grid     string `json:"grid"`
	Topology string `json:"topology"`
	Scenario string `json:"scenario"`
	// Fault is the fault profile ("" = none).
	Fault string `json:"fault,omitempty"`
	Seed  uint64 `json:"seed"`
}

func (c Cell) String() string {
	f := c.Fault
	if f == "" {
		f = "none"
	}
	return fmt.Sprintf("%s/%s/%s/faults=%s/seed=%d", c.Grid, c.Topology, c.Scenario, f, c.Seed)
}

// Parse decodes a manifest from JSON, rejecting unknown fields so typos
// surface as errors instead of silently-ignored knobs.
func Parse(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("campaign: parsing manifest: %w", err)
	}
	return &m, nil
}

// Validate checks the manifest against the driver registry, the scenario
// registry, the topology spec grammar and the fault-parameter validator.
// When allowFiles is false, file: topology specs are rejected (the serving
// layer must not read server-side paths on request).
func (m *Manifest) Validate(allowFiles bool) error {
	if m.Name == "" {
		return fmt.Errorf("campaign: manifest has no name")
	}
	if len(m.Experiments) == 0 && len(m.Grids) == 0 {
		return fmt.Errorf("campaign: manifest %s has no experiments and no grids", m.Name)
	}
	seen := map[string]bool{}
	for i, e := range m.Experiments {
		if e.Driver == "" {
			return fmt.Errorf("campaign: experiment %d has no driver", i)
		}
		if _, err := driverProbe(e.Driver); err != nil {
			return err
		}
	}
	for gi, g := range m.Grids {
		if g.Name == "" {
			return fmt.Errorf("campaign: grid %d has no name", gi)
		}
		if seen[g.Name] {
			return fmt.Errorf("campaign: duplicate grid name %q", g.Name)
		}
		seen[g.Name] = true
		if len(g.Topologies) == 0 || len(g.Scenarios) == 0 {
			return fmt.Errorf("campaign: grid %s needs topologies and scenarios", g.Name)
		}
		for _, ts := range g.Topologies {
			sp, err := topology.ParseSpec(ts)
			if err != nil {
				return fmt.Errorf("campaign: grid %s: %w", g.Name, err)
			}
			if sp.Family == "file" && !allowFiles {
				return fmt.Errorf("campaign: grid %s: file topology %q not allowed here", g.Name, ts)
			}
		}
		for _, sc := range g.Scenarios {
			if _, ok := workload.Lookup(sc); !ok {
				return fmt.Errorf("campaign: grid %s: unknown scenario %q", g.Name, sc)
			}
		}
		// Validate every fault-profile cell the grid expands to — including
		// the default taken from Params.FaultProfile when the axis is
		// empty, so no fault configuration escapes validation.
		for _, f := range gridProfiles(&g) {
			p := g.Params
			p.FaultProfile = f
			if err := workload.ValidateFaultParams(p); err != nil {
				return fmt.Errorf("campaign: grid %s: %w", g.Name, err)
			}
		}
		// The routing-policy and root axes ride Params too; a typoed policy
		// or a budget on a non-misroute grid must fail validation, not run a
		// silently different experiment.
		if err := workload.ValidateRoutingParams(g.Params); err != nil {
			return fmt.Errorf("campaign: grid %s: %w", g.Name, err)
		}
	}
	return nil
}

// cells expands the manifest's grids into the deterministic cell order:
// grid-major, then topology, scenario, fault profile, seed.
func (m *Manifest) cells() []Cell {
	var out []Cell
	for _, g := range m.Grids {
		profiles := gridProfiles(&g)
		seeds := g.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{m.Seed}
		}
		for _, topo := range g.Topologies {
			for _, sc := range g.Scenarios {
				for _, f := range profiles {
					for _, seed := range seeds {
						out = append(out, Cell{Grid: g.Name, Topology: topo, Scenario: sc, Fault: f, Seed: seed})
					}
				}
			}
		}
	}
	return out
}

// gridProfiles resolves a grid's fault-profile axis: the explicit list, or
// the single profile carried in Params (usually "" = no faults). The cell
// coordinate is therefore always the profile that actually runs.
func gridProfiles(g *Grid) []string {
	if len(g.FaultProfiles) > 0 {
		return g.FaultProfiles
	}
	return []string{g.Params.FaultProfile}
}

// NumCells reports how many grid cells the manifest expands to — serving
// layers use it for admission control before running anything.
func (m *Manifest) NumCells() int { return len(m.cells()) }

// grid returns the named grid.
func (m *Manifest) grid(name string) *Grid {
	for i := range m.Grids {
		if m.Grids[i].Name == name {
			return &m.Grids[i]
		}
	}
	return nil
}

// Builtin returns a named built-in manifest: "paper" regenerates every
// figure/table driver of the reproduction plus a topology-zoo grid, "smoke"
// is the seconds-scale manifest CI uses to assert end-to-end determinism.
func Builtin(name string) (*Manifest, bool) {
	switch name {
	case "paper":
		m := &Manifest{
			Name:  "paper",
			Title: "SPAM reproduction campaign (Libeskind-Hadas, Mazzoni, Rajagopalan; IPPS/SPDP 1998)",
			Seed:  1998,
		}
		for _, d := range driverNames() {
			m.Experiments = append(m.Experiments, Experiment{Driver: d, Trials: 10, Messages: 1200})
		}
		m.Grids = []Grid{{
			Name: "topology-zoo",
			Topologies: []string{
				"lattice:64", "gnm:64+24", "mesh:8x8", "torus:8x8",
				"hypercube:6", "fattree:4x3",
			},
			Scenarios:     []string{"mixed", "hotspot", "closed-loop"},
			FaultProfiles: []string{"", "poisson"},
			Trials:        2,
			Params:        workload.Params{Messages: 800},
		}}
		return m, true
	case "collectives":
		// Collective-communication sweep: the application-level workloads
		// (ring/tree all-reduce, all-to-all, stage pipeline) across the
		// same topology zoo the paper grid uses — the figures the paper
		// never had. 6 topologies × 4 scenarios = 24 cells.
		return &Manifest{
			Name:  "collectives",
			Title: "Collective-communication workloads across the topology zoo",
			Seed:  1998,
			Grids: []Grid{{
				Name: "collectives-zoo",
				Topologies: []string{
					"lattice:64", "gnm:64+24", "mesh:8x8", "torus:8x8",
					"hypercube:6", "fattree:4x3",
				},
				Scenarios: []string{"allreduce-ring", "allreduce-tree", "alltoall", "pipeline"},
				Trials:    2,
				Params:    workload.Params{Messages: 600},
			}},
		}, true
	case "routing":
		// Adaptive-routing comparator: the same zoo × workload cells under
		// each routing-policy family — baseline up*/down*, bounded misroute
		// (budget 2) and Duato-style fully adaptive with the baseline escape
		// class. One grid per policy (Params are per-grid), certificate-sweep
		// topology sizes so the whole campaign is seconds-scale and CI can
		// diff two runs byte-for-byte. The routing experiment driver
		// regenerates the Fig 3-style latency-vs-rate sweep per policy plus
		// the root-strategy comparison.
		zoo := []string{
			"lattice:32", "gnm:24+12", "mesh:5x4", "torus:5x5",
			"hypercube:4", "fattree:2x3",
		}
		scenarios := []string{"mixed", "hotspot"}
		grid := func(name string, p workload.Params) Grid {
			p.Messages = 400
			return Grid{Name: name, Topologies: zoo, Scenarios: scenarios, Trials: 2, Params: p}
		}
		return &Manifest{
			Name:  "routing",
			Title: "Adaptive-routing comparator: baseline vs bounded misroute vs Duato escape",
			Seed:  1998,
			Experiments: []Experiment{
				{Driver: "routing", Trials: 3, Messages: 400},
			},
			Grids: []Grid{
				grid("baseline", workload.Params{}),
				grid("misroute-2", workload.Params{Routing: "misroute", MisrouteBudget: 2}),
				grid("duato", workload.Params{Routing: "duato"}),
			},
		}, true
	case "smoke":
		return &Manifest{
			Name: "smoke",
			Seed: 7,
			Experiments: []Experiment{
				{Driver: "hotspot", Trials: 2},
			},
			Grids: []Grid{{
				Name:       "zoo-smoke",
				Topologies: []string{"fattree:2x3", "torus:4x4"},
				Scenarios:  []string{"mixed"},
				Trials:     1,
				Params:     workload.Params{Messages: 200},
			}},
		}, true
	case "scale":
		// The past-the-old-cap manifest: fat-trees at 16384 and 62500
		// switches, sizes the compressed routing tables made admissible
		// (the pre-PR7 cap was 4096). One trial per cell — the point is the
		// per-cell TableMB/TableCompression columns in the report plus proof
		// that a 64k-switch network labels, compiles and routes end to end.
		// Expect hours of wall clock on one core, and ~30 GiB of RAM at the
		// 62500-switch cell: the labeling's all-pairs switch-distance matrix
		// is ~15 GiB and the compiled tables ~3.3 GiB (the dense table
		// layout would need ~362 GiB).
		return &Manifest{
			Name:  "scale",
			Title: "Large-network scaling campaign (past the 4096-switch cap)",
			Seed:  1998,
			Grids: []Grid{{
				Name:       "fattree-scale",
				Topologies: []string{"fattree:8x4", "fattree:16x4", "fattree:25x4"},
				Scenarios:  []string{"mixed"},
				Trials:     1,
				Params:     workload.Params{Messages: 400},
			}},
		}, true
	}
	return nil, false
}

// BuiltinNames lists the built-in manifests.
func BuiltinNames() []string { return []string{"paper", "collectives", "routing", "smoke", "scale"} }

// sanitize converts a name into a filesystem- and markdown-safe slug.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r - 'A' + 'a')
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
