package campaign_test

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/workload"
)

// The campaign API end to end: declare a manifest (experiments × topology
// zoo grid), run it, and render the deterministic report. CLI users reach
// the same engine via `spamsim -campaign <name|file>`; HTTP users via
// `POST /campaign`.
func ExampleRun() {
	m := &campaign.Manifest{
		Name: "example",
		Seed: 7,
		Grids: []campaign.Grid{{
			Name:       "zoo",
			Topologies: []string{"torus:4x4", "fattree:2x3"},
			Scenarios:  []string{"mixed"},
			Trials:     1,
			Params:     workload.Params{Messages: 150},
		}},
	}
	res, err := campaign.Run(context.Background(), m, campaign.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cells: %d, computed: %d, plots: %d\n",
		len(res.Cells), res.Computed, len(res.SVGs))
	fmt.Println("report starts with:", strings.SplitN(res.Report, "\n", 2)[0])
	// Output:
	// cells: 2, computed: 2, plots: 1
	// report starts with: # Campaign example
}
